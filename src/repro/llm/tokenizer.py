"""Word-piece-ish tokenizer for the Verilog + English training corpus.

A deliberately small design: the vocabulary is built from training text by
frequency, words below the cut-off back off to character tokens.  This is
enough for the two *real* language models in this repo (the backoff n-gram
and the numpy transformer) whose job is to demonstrate the paper's
data-side claims (Fig. 3 scaling law, Fig. 7 ablation), not to rival
Llama-2.
"""

from __future__ import annotations

import re
from collections import Counter
from dataclasses import dataclass, field

PAD, UNK, BOS, EOS = "<pad>", "<unk>", "<bos>", "<eos>"
_SPECIALS = (PAD, UNK, BOS, EOS)

_WORD_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*|\d+|'[bodhBODH]|\S")


def pretokenize(text: str) -> list[str]:
    """Split into word/number/punct pieces (Verilog-friendly)."""
    return _WORD_RE.findall(text)


@dataclass
class Tokenizer:
    """Frequency-based vocabulary with character back-off."""

    vocab: dict[str, int] = field(default_factory=dict)
    inverse: list[str] = field(default_factory=list)

    @staticmethod
    def train(texts: list[str], vocab_size: int = 2048) -> "Tokenizer":
        counts: Counter[str] = Counter()
        chars: Counter[str] = Counter()
        for text in texts:
            for piece in pretokenize(text):
                counts[piece] += 1
                chars.update(piece)
        tokenizer = Tokenizer()
        for special in _SPECIALS:
            tokenizer._add(special)
        for ch, _ in chars.most_common():
            tokenizer._add(ch)
        budget = vocab_size - len(tokenizer.vocab)
        for piece, _ in counts.most_common():
            if budget <= 0:
                break
            if piece not in tokenizer.vocab:
                tokenizer._add(piece)
                budget -= 1
        return tokenizer

    def _add(self, piece: str) -> None:
        if piece not in self.vocab:
            self.vocab[piece] = len(self.inverse)
            self.inverse.append(piece)

    def __len__(self) -> int:
        return len(self.inverse)

    @property
    def pad_id(self) -> int:
        return self.vocab[PAD]

    @property
    def bos_id(self) -> int:
        return self.vocab[BOS]

    @property
    def eos_id(self) -> int:
        return self.vocab[EOS]

    @property
    def unk_id(self) -> int:
        return self.vocab[UNK]

    def encode(self, text: str, add_special: bool = False) -> list[int]:
        ids: list[int] = []
        if add_special:
            ids.append(self.bos_id)
        for piece in pretokenize(text):
            token_id = self.vocab.get(piece)
            if token_id is not None:
                ids.append(token_id)
                continue
            for ch in piece:           # character back-off
                ids.append(self.vocab.get(ch, self.unk_id))
        if add_special:
            ids.append(self.eos_id)
        return ids

    def decode(self, ids: list[int]) -> str:
        pieces = [self.inverse[i] for i in ids
                  if 0 <= i < len(self.inverse)
                  and self.inverse[i] not in _SPECIALS]
        return " ".join(pieces)
