"""Backoff n-gram language model.

The fast "real" LM of the repo: trained by counting, evaluated by
perplexity.  Used for the Fig. 3 scaling-law experiment (loss vs dataset
size) and the Fig. 7 dataset-mix ablation where hundreds of training runs
must finish in seconds.

Stupid-backoff scoring (Brants et al. 2007) with add-k smoothing at the
unigram floor — simple, monotone in data volume, and well-behaved on the
small vocabularies our tokenizer produces.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field


@dataclass
class NGramModel:
    """Order-``n`` stupid-backoff LM over integer token ids."""

    order: int = 3
    backoff: float = 0.4
    add_k: float = 0.01
    vocab_size: int = 0
    counts: list[Counter] = field(default_factory=list)      # per order
    context_totals: list[Counter] = field(default_factory=list)
    trained_tokens: int = 0

    def __post_init__(self):
        if self.order < 1:
            raise ValueError("order must be >= 1")
        if not self.counts:
            self.counts = [Counter() for _ in range(self.order)]
            self.context_totals = [Counter() for _ in range(self.order)]

    # -- training -----------------------------------------------------------

    def fit(self, sequences: list[list[int]],
            vocab_size: int | None = None) -> "NGramModel":
        """Accumulate counts from token-id sequences (callable repeatedly)."""
        for sequence in sequences:
            self.trained_tokens += len(sequence)
            if vocab_size is None and sequence:
                self.vocab_size = max(self.vocab_size, max(sequence) + 1)
            for pos in range(len(sequence)):
                for k in range(self.order):
                    if pos - k < 0:
                        break
                    context = tuple(sequence[pos - k:pos])
                    self.counts[k][(context, sequence[pos])] += 1
                    self.context_totals[k][context] += 1
        if vocab_size is not None:
            self.vocab_size = vocab_size
        return self

    # -- scoring -----------------------------------------------------------

    def prob(self, context: list[int], token: int) -> float:
        """Stupid-backoff probability of ``token`` after ``context``."""
        vocab = max(self.vocab_size, 1)
        for k in range(min(len(context), self.order - 1), -1, -1):
            ctx = tuple(context[len(context) - k:])
            total = self.context_totals[k].get(ctx, 0)
            if total > 0:
                hits = self.counts[k].get((ctx, token), 0)
                if hits > 0:
                    penalty = self.backoff ** (
                        min(len(context), self.order - 1) - k)
                    return penalty * hits / total
        # smoothed unigram floor
        total = self.context_totals[0].get((), 0)
        hits = self.counts[0].get(((), token), 0)
        return (hits + self.add_k) / (total + self.add_k * vocab)

    def logprob(self, sequence: list[int]) -> float:
        """Natural-log probability of a sequence."""
        out = 0.0
        for pos, token in enumerate(sequence):
            context = sequence[max(0, pos - self.order + 1):pos]
            out += math.log(max(self.prob(context, token), 1e-12))
        return out

    def cross_entropy(self, sequences: list[list[int]]) -> float:
        """Mean negative log-likelihood per token (the Fig. 3 'loss')."""
        total_logprob = 0.0
        total_tokens = 0
        for sequence in sequences:
            if not sequence:
                continue
            total_logprob += self.logprob(sequence)
            total_tokens += len(sequence)
        if total_tokens == 0:
            return float("inf")
        return -total_logprob / total_tokens

    def perplexity(self, sequences: list[list[int]]) -> float:
        return math.exp(min(self.cross_entropy(sequences), 50.0))

    # -- generation --------------------------------------------------------

    def generate(self, prefix: list[int], max_tokens: int = 32,
                 seed: int = 0) -> list[int]:
        """Greedy-ish sampling (argmax with deterministic tie-break)."""
        import random
        rng = random.Random(seed)
        out = list(prefix)
        for _ in range(max_tokens):
            context = tuple(out[-(self.order - 1):]) if self.order > 1 \
                else ()
            candidates = None
            for k in range(len(context), -1, -1):
                ctx = context[len(context) - k:]
                total = self.context_totals[k].get(ctx, 0)
                if total > 0:
                    candidates = [(tok, cnt) for (c, tok), cnt
                                  in self.counts[k].items() if c == ctx]
                    break
            if not candidates:
                break
            tokens, weights = zip(*candidates)
            out.append(rng.choices(tokens, weights=weights, k=1)[0])
        return out
