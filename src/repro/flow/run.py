"""Run validated flows: direct topo-serial, or through the service.

The direct path is the determinism reference — nodes execute one at a
time in :func:`validate_flow`'s stable topological order via the same
``execute_job`` the daemon's workers call, with synthetic per-node ids
that never leak into result blobs.  The service path submits the whole
graph in one ``POST /api/flow`` (one journal group commit; the
scheduler's waiter index gates dependents) and collects results per
node.  Both yield byte-identical blobs for the same spec — the
property the flow test-suite pins down.
"""

from __future__ import annotations

from dataclasses import dataclass

from .spec import FlowNode, flow_name, resolve_refs, validate_flow


class FlowError(RuntimeError):
    """A flow finished with failed or dropped nodes."""

    def __init__(self, message: str, failures: dict[str, dict]):
        super().__init__(message)
        self.failures = failures


def run_flow_direct(blob: dict, workdir: str, *,
                    engine_jobs: int = 1) -> dict[str, dict]:
    """Execute a flow serially in topological order, no daemon.

    Returns ``{node name: result blob}``.  Blobs are pure functions of
    the canonical specs, so this is the reference the service path is
    compared against byte for byte.
    """
    from ..serve.executor import execute_job

    nodes = validate_flow(blob)
    id_map = {node.name: f"flow-{node.name}" for node in nodes}
    blobs_by_id: dict[str, dict] = {}
    results: dict[str, dict] = {}
    for node in nodes:
        spec = resolve_refs(node.spec, id_map)
        result = execute_job(node.kind, spec, workdir,
                             engine_jobs=engine_jobs,
                             resolve=blobs_by_id.get)
        blobs_by_id[id_map[node.name]] = result
        results[node.name] = result
    return results


@dataclass
class FlowRun:
    """A submitted flow: node name -> job dict, as returned by the API."""

    name: str
    jobs: dict[str, dict]

    @property
    def ids(self) -> list[str]:
        return [job["id"] for job in self.jobs.values()]

    def id_for(self, node: str) -> str:
        return self.jobs[node]["id"]


def submit_flow(client, blob: dict) -> FlowRun:
    """Submit a flow through a :class:`ServeClient` (daemon or gateway)."""
    payload = client.submit_flow(blob)
    return FlowRun(name=payload.get("flow", flow_name(blob)),
                   jobs=payload["nodes"])


def run_flow(client, blob: dict, *, timeout: float = 600.0,
             poll: float = 0.05) -> dict[str, dict]:
    """Submit a flow and wait for every node; return name -> result blob.

    Raises :class:`FlowError` if any node ends failed (or is dropped
    because a dependency failed), carrying the terminal job dicts so
    callers can render errors per node.
    """
    run = submit_flow(client, blob)
    final = client.wait(run.ids, timeout=timeout, poll=poll)
    failures = {name: final[job["id"]]
                for name, job in run.jobs.items()
                if final[job["id"]]["state"] != "done"}
    if failures:
        detail = "; ".join(
            f"{name}: {job['state']} ({job.get('error') or 'no error'})"
            for name, job in sorted(failures.items()))
        raise FlowError(f"flow '{run.name}' failed: {detail}", failures)
    return {name: client.result(job["id"])
            for name, job in run.jobs.items()}


__all__ = ["FlowError", "FlowRun", "run_flow", "run_flow_direct",
           "submit_flow", "validate_flow", "FlowNode"]
