"""Declarative DAG specs: named job nodes + ``after`` edges + fan-out.

A *flow* is a JSON-able description of a job DAG the service can run —
the generalisation of the hardcoded ``repro pipeline`` chain (ROADMAP
open item 4).  Every node names one job of an existing kind
(augment / train / evaluate / infer / simulate / experiment / probe);
edges are plain node names in ``after``; fan-out over seed grids,
ablation axes or k-fold splits is a ``foreach`` template expanded
deterministically at validation time.  Example::

    {
      "name": "seed-sweep",
      "nodes": [
        {"name": "aug-{seed}", "kind": "augment",
         "spec": {"paths": ["corpus/"], "seed": "{seed}"},
         "foreach": {"seed": [0, 1, 2]}},
        {"name": "score", "kind": "evaluate",
         "spec": {"suite": "thakur", "models": ["ours-13b"]},
         "after": ["aug-0", "aug-1", "aug-2"]}
      ]
    }

**Templates.**  ``foreach`` maps axis names to value lists; the node
expands to the cross product.  Axes iterate in sorted-name order and
values in listed order, so the expanded node set and its order are a
pure function of the spec content — never of dict iteration order,
submission transport, or worker count (property-tested).  A spec
string that *is* exactly ``"{axis}"`` is replaced by the raw value
(type-preserving: ``"seed": "{seed}"`` stays an integer); any other
occurrence substitutes textually.  Strings in nodes without a
``foreach`` are never touched, so literal braces in e.g. inlined
Verilog sources survive.

**References.**  A spec string of exactly ``"@flow:<node>"`` resolves
to that node's job id at submit time (the daemon substitutes the real
id before journaling; direct execution substitutes a synthetic one) —
this is how an evaluate node points its ``trained`` entry at a train
node.  A reference implies a dependency: the referenced node is added
to ``after`` automatically.

**Validation** (:func:`validate_flow`) rejects — with
:class:`~repro.serve.jobs.SpecError`, which both HTTP front ends map
to a 400 — duplicate node names (including collisions produced by
expansion), self-referential ``after`` edges or self ``@flow:`` refs,
unknown references, cycles, unknown kinds, oversized expansions, and
any per-node spec the kind's normaliser refuses.  It returns the
expanded nodes in a stable topological order with each node's spec
already canonical, so a flow that validates is runnable as journaled.
"""

from __future__ import annotations

import itertools
import re
from dataclasses import dataclass

from ..serve.jobs import JOB_KINDS, SpecError, validate_spec

#: Spec strings of exactly this prefix + a node name resolve to that
#: node's job id at submit time.
FLOW_REF_PREFIX = "@flow:"

#: Expansion ceiling: a fan-out template must not be able to stuff the
#: journal with an unbounded node count from one request.
MAX_FLOW_NODES = 256

_AXIS_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


@dataclass(frozen=True)
class FlowNode:
    """One expanded, validated node: canonical spec, resolved edges.

    ``after`` contains node *names* (explicit ``after`` entries first,
    then names implied by ``@flow:`` references, duplicates dropped);
    ``spec`` is the kind-canonical spec with ``@flow:`` placeholders
    still unresolved (resolution needs job ids, which only exist at
    submit time — see :func:`resolve_refs`).
    """

    name: str
    kind: str
    spec: dict
    after: tuple[str, ...] = ()
    priority: int = 0

    def to_dict(self) -> dict:
        return {"name": self.name, "kind": self.kind, "spec": self.spec,
                "after": list(self.after), "priority": self.priority}


def _fail(message: str) -> None:
    raise SpecError(message)


def _substitute(value, bindings: dict):
    """Template substitution over one JSON value (recursive).

    Exact-token strings are replaced by the raw axis value so numeric
    knobs keep their type; otherwise ``{axis}`` substitutes textually.
    Only the node's own axes are touched — every other brace sequence
    (Verilog concatenations, format strings…) passes through verbatim.
    """
    if isinstance(value, str):
        for axis, axis_value in bindings.items():
            token = "{" + axis + "}"
            if value == token:
                return axis_value
            if token in value:
                value = value.replace(token, str(axis_value))
        return value
    if isinstance(value, list):
        return [_substitute(item, bindings) for item in value]
    if isinstance(value, dict):
        return {key: _substitute(item, bindings)
                for key, item in value.items()}
    return value


def _check_raw_node(index: int, node) -> None:
    if not isinstance(node, dict):
        _fail(f"nodes[{index}] must be a JSON object")
    name = node.get("name")
    if not (isinstance(name, str) and name.strip()):
        _fail(f"nodes[{index}] needs a non-empty string 'name'")
    if node.get("kind") not in JOB_KINDS:
        _fail(f"node '{name}': unknown job kind "
              f"{node.get('kind')!r}; available: {', '.join(JOB_KINDS)}")
    if not isinstance(node.get("spec", {}), dict):
        _fail(f"node '{name}': 'spec' must be a JSON object")
    after = node.get("after", [])
    if not (isinstance(after, list)
            and all(isinstance(dep, str) and dep.strip()
                    for dep in after)):
        _fail(f"node '{name}': 'after' must be a list of node names")
    priority = node.get("priority", 0)
    if not isinstance(priority, int) or isinstance(priority, bool):
        _fail(f"node '{name}': 'priority' must be an integer")
    foreach = node.get("foreach")
    if foreach is None:
        return
    if not isinstance(foreach, dict) or not foreach:
        _fail(f"node '{name}': 'foreach' must be a non-empty object "
              "of axis -> values")
    for axis, values in foreach.items():
        if not (isinstance(axis, str) and _AXIS_RE.match(axis)):
            _fail(f"node '{name}': bad foreach axis name {axis!r}")
        if not (isinstance(values, list) and values):
            _fail(f"node '{name}': foreach axis '{axis}' needs a "
                  "non-empty list of values")
        for value in values:
            if isinstance(value, bool) or not isinstance(
                    value, (str, int, float)):
                _fail(f"node '{name}': foreach axis '{axis}' values "
                      "must be strings or numbers")


def expand_nodes(blob: dict) -> list[dict]:
    """Structural checks + deterministic template expansion.

    Returns raw node dicts (name/kind/spec/after/priority) in spec
    order, template instances in sorted-axis cross-product order.
    Specs are *not* yet canonical — :func:`validate_flow` is the full
    pass.
    """
    if not isinstance(blob, dict):
        _fail("a flow spec must be a JSON object")
    name = blob.get("name", "")
    if not isinstance(name, str):
        _fail("flow 'name' must be a string")
    nodes_raw = blob.get("nodes")
    if not (isinstance(nodes_raw, list) and nodes_raw):
        _fail("flow 'nodes' must be a non-empty list")
    base_priority = blob.get("priority", 0)
    if not isinstance(base_priority, int) or isinstance(base_priority,
                                                       bool):
        _fail("flow 'priority' must be an integer")
    expanded: list[dict] = []
    for index, node in enumerate(nodes_raw):
        _check_raw_node(index, node)
        foreach = node.get("foreach")
        priority = node.get("priority", base_priority)
        if not foreach:
            expanded.append({"name": node["name"].strip(),
                             "kind": node["kind"],
                             "spec": node.get("spec", {}),
                             "after": list(node.get("after", [])),
                             "priority": priority})
        else:
            # Sorted axis names + listed value order make the grid
            # order a pure function of spec content.
            axes = sorted(foreach)
            for combo in itertools.product(*(foreach[axis]
                                             for axis in axes)):
                bindings = dict(zip(axes, combo))
                expanded.append({
                    "name": str(_substitute(node["name"],
                                            bindings)).strip(),
                    "kind": node["kind"],
                    "spec": _substitute(node.get("spec", {}), bindings),
                    "after": [str(_substitute(dep, bindings))
                              for dep in node.get("after", [])],
                    "priority": priority})
        if len(expanded) > MAX_FLOW_NODES:
            _fail(f"flow expands to more than {MAX_FLOW_NODES} nodes")
    return expanded


def _spec_refs(value, found: list[str]) -> None:
    """Collect ``@flow:`` node references in spec order."""
    if isinstance(value, str):
        if value.startswith(FLOW_REF_PREFIX):
            ref = value[len(FLOW_REF_PREFIX):]
            if ref not in found:
                found.append(ref)
    elif isinstance(value, list):
        for item in value:
            _spec_refs(item, found)
    elif isinstance(value, dict):
        for item in value.values():
            _spec_refs(item, found)


def resolve_refs(value, id_map: dict[str, str]):
    """Replace ``@flow:<node>`` strings with the mapped job ids."""
    if isinstance(value, str):
        if value.startswith(FLOW_REF_PREFIX):
            return id_map[value[len(FLOW_REF_PREFIX):]]
        return value
    if isinstance(value, list):
        return [resolve_refs(item, id_map) for item in value]
    if isinstance(value, dict):
        return {key: resolve_refs(item, id_map)
                for key, item in value.items()}
    return value


def validate_flow(blob: dict) -> list[FlowNode]:
    """Expand + fully validate a flow spec.

    Returns :class:`FlowNode` entries in a stable topological order
    (ready nodes emit in spec order), each with its canonical spec.
    Raises :class:`SpecError` on anything a daemon must refuse with a
    400: duplicate node names, self edges, unknown references, cycles,
    unknown kinds, oversized expansions, or an invalid per-node spec.
    """
    expanded = expand_nodes(blob)
    names = [node["name"] for node in expanded]
    seen: set[str] = set()
    for name in names:
        if name in seen:
            _fail(f"duplicate node name '{name}' (after expansion)")
        seen.add(name)
    deps: dict[str, list[str]] = {}
    for node in expanded:
        name = node["name"]
        refs = list(dict.fromkeys(node["after"]))
        _spec_refs(node["spec"], spec_refs := [])
        for ref in spec_refs:
            if ref not in refs:
                refs.append(ref)
        for ref in refs:
            if ref == name:
                _fail(f"node '{name}' depends on itself")
            if ref not in seen:
                _fail(f"node '{name}' references unknown node '{ref}'")
        deps[name] = refs
    # Stable Kahn: emit ready nodes in spec order until drained.
    order: list[dict] = []
    emitted: set[str] = set()
    pending = list(expanded)
    while pending:
        ready = [node for node in pending
                 if all(dep in emitted for dep in deps[node["name"]])]
        if not ready:
            cycle = ", ".join(node["name"] for node in pending)
            _fail(f"dependency cycle among nodes: {cycle}")
        for node in ready:
            order.append(node)
            emitted.add(node["name"])
        pending = [node for node in pending if node["name"] not in emitted]
    nodes: list[FlowNode] = []
    for node in order:
        try:
            spec = validate_spec(node["kind"], node["spec"])
        except SpecError as exc:
            raise SpecError(f"node '{node['name']}': {exc}") from None
        nodes.append(FlowNode(name=node["name"], kind=node["kind"],
                              spec=spec, after=tuple(deps[node["name"]]),
                              priority=node["priority"]))
    return nodes


def flow_name(blob: dict) -> str:
    name = blob.get("name", "") if isinstance(blob, dict) else ""
    return name if isinstance(name, str) and name.strip() else "flow"
