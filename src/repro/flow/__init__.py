"""User-defined job DAGs: spec format, validation, execution.

See :mod:`repro.flow.spec` for the spec format (nodes, ``after``
edges, ``foreach`` fan-out templates, ``@flow:`` references) and
:mod:`repro.flow.run` for the two execution paths (direct topo-serial
reference vs whole-graph service submission) — byte-identical results
either way.
"""

from .pipeline import pipeline_flow
from .run import (FlowError, FlowRun, run_flow, run_flow_direct,
                  submit_flow)
from .spec import (FLOW_REF_PREFIX, MAX_FLOW_NODES, FlowNode,
                   expand_nodes, flow_name, resolve_refs, validate_flow)

__all__ = [
    "FLOW_REF_PREFIX", "MAX_FLOW_NODES", "FlowError", "FlowNode",
    "FlowRun", "expand_nodes", "flow_name", "pipeline_flow",
    "resolve_refs", "run_flow", "run_flow_direct", "submit_flow",
    "validate_flow",
]
