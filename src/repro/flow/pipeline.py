"""The augment → train → evaluate pipeline as a built-in flow spec.

``repro pipeline`` used to hand-roll three ``/api/submit`` calls; it
is now this data.  The node specs are kept field-for-field identical
to the historical submissions so the canonical job specs — and
therefore the result blobs and the golden e2e digest pin in
``tests/golden/pipeline_report.json`` — are unchanged.  The evaluate
node points at the train node's artefact with an ``@flow:train``
reference, which the submit path resolves to the real train job id.
"""

from __future__ import annotations


def pipeline_flow(*, paths: list[str], seed: int = 0,
                  completion_only: bool = False,
                  train_knobs: dict | None = None,
                  pool: dict | None = None,
                  register_as: str = "pipeline-model",
                  suite: str = "thakur",
                  models: list[str] | None = None,
                  samples: int | None = None, k: int = 5,
                  levels: list[str] | None = None,
                  sim_backend: str | None = None,
                  priority: int = 0) -> dict:
    """Build the 3-node pipeline DAG spec.

    ``models`` lists baseline columns; the freshly trained
    ``register_as`` model is appended when absent, never dropped —
    scoring it is the point of the pipeline.
    """
    corpus_spec = {"paths": list(paths), "seed": seed,
                   "completion_only": completion_only}
    train_spec = dict(corpus_spec)
    train_spec.update(train_knobs or {})
    train_spec.update(pool or {})
    train_spec["register_as"] = register_as
    eval_models = list(models) if models else [register_as]
    if register_as not in eval_models:
        eval_models = eval_models + [register_as]
    eval_spec = {"suite": suite, "models": eval_models,
                 "samples": samples, "k": k, "levels": levels,
                 "seed": 0, "sim_backend": sim_backend,
                 "trained": {"name": register_as, "job": "@flow:train"}}
    return {"name": "pipeline", "priority": priority, "nodes": [
        {"name": "augment", "kind": "augment", "spec": corpus_spec},
        {"name": "train", "kind": "train", "spec": train_spec,
         "after": ["augment"]},
        {"name": "evaluate", "kind": "evaluate", "spec": eval_spec},
    ]}
