"""Diagnostic records with yosys-compatible text rendering.

The repair-data generator (paper Sec. 3.2.2, Fig. 6) pairs the *first* error
line with the broken file, e.g.::

    ./111_3-bit LFSR.v:7: ERROR: syntax error, unexpected ']'
"""

from __future__ import annotations

from dataclasses import dataclass, field

ERROR = "ERROR"
WARNING = "WARNING"


@dataclass(frozen=True)
class Diagnostic:
    """One checker finding."""

    severity: str
    message: str
    line: int = 0
    filename: str = "<input>"

    def formatted(self) -> str:
        return f"{self.filename}:{self.line}: {self.severity}: {self.message}"


@dataclass
class CheckResult:
    """All findings for one source file."""

    filename: str
    diagnostics: list[Diagnostic] = field(default_factory=list)

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == WARNING]

    @property
    def ok(self) -> bool:
        return not self.errors

    def first_error(self) -> str | None:
        """The yosys-style feedback line the repair dataset embeds."""
        for diag in self.diagnostics:
            if diag.severity == ERROR:
                return diag.formatted()
        return None

    def report(self) -> str:
        if not self.diagnostics:
            return f"{self.filename}: OK"
        return "\n".join(d.formatted() for d in self.diagnostics)
