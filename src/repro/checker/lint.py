"""Yosys-style Verilog checker.

``check_source`` runs the parser and then a semantic lint pass and returns a
:class:`CheckResult`.  The checks mirror what yosys' Verilog front-end
rejects when the paper's augmentation framework feeds it mutated files:

* syntax errors (from the parser, bison-style messages),
* undeclared identifiers,
* duplicate declarations,
* procedural assignment to nets / continuous assignment to regs,
* header ports never declared,
* instance connections naming unknown ports,
* width-mismatch warnings on continuous assigns (best effort).
"""

from __future__ import annotations

from ..verilog import ast, parse
from ..verilog.errors import VerilogError
from .messages import ERROR, WARNING, CheckResult, Diagnostic

_VARIABLE_KINDS = frozenset({"reg", "integer", "real", "time"})


class _ModuleSymbols:
    """Per-module symbol table built during the lint pass."""

    def __init__(self, module: ast.Module):
        self.module = module
        self.kinds: dict[str, str] = {}          # name -> wire/reg/...
        self.lines: dict[str, int] = {}
        self.widths: dict[str, int | None] = {}
        self.arrays: set[str] = set()
        self.params: dict[str, int | None] = {}
        self.functions: set[str] = set()
        self.duplicates: list[tuple[str, int]] = []
        self._collect()

    def _merge(self, name: str, kind: str, line: int,
               width: int | None, is_port_decl: bool) -> None:
        if name in self.kinds:
            # A header port may be re-declared once in the body (non-ANSI
            # style) and a port may gain a reg declaration; flag the rest.
            previous = self.kinds[name]
            if previous == "port" or (is_port_decl and previous == "wire"):
                pass
            elif kind in _VARIABLE_KINDS and previous == "wire":
                pass
            else:
                self.duplicates.append((name, line))
            if kind != "port":
                self.kinds[name] = kind
            if width is not None:
                self.widths[name] = width
            return
        self.kinds[name] = kind
        self.lines[name] = line
        self.widths[name] = width
        return

    def _range_width(self, rng: ast.Range | None) -> int | None:
        if rng is None:
            return 1
        try:
            msb = _static_int(rng.msb, self.params)
            lsb = _static_int(rng.lsb, self.params)
        except _NotStatic:
            return None
        return abs(msb - lsb) + 1

    def _collect(self) -> None:
        module = self.module
        for decl in module.params:
            for assign in decl.assignments:
                self.params[assign.name] = _try_static(assign.init,
                                                       self.params)
        for item in module.items:
            if isinstance(item, ast.ParamDecl):
                for assign in item.assignments:
                    self.params[assign.name] = _try_static(assign.init,
                                                           self.params)
        for port in module.ports:
            if port.decl is not None:
                kind = port.decl.net_kind or "wire"
                self._merge(port.name, kind, port.line,
                            self._range_width(port.decl.range), True)
            else:
                self.kinds.setdefault(port.name, "port")
                self.lines.setdefault(port.name, port.line)
                self.widths.setdefault(port.name, None)
        for item in module.items:
            if isinstance(item, ast.PortDecl):
                kind = item.net_kind or "wire"
                for name in item.names:
                    self._merge(name, kind, item.line,
                                self._range_width(item.range), True)
            elif isinstance(item, ast.Decl):
                width = self._range_width(item.range)
                if item.kind == "integer":
                    width = 32
                for decl in item.declarators:
                    self._merge(decl.name, item.kind, item.line, width,
                                False)
                    if decl.array is not None:
                        self.arrays.add(decl.name)
            elif isinstance(item, ast.FunctionDecl):
                self.functions.add(item.name)
            elif isinstance(item, (ast.Always, ast.Initial)):
                self._collect_block_locals(item.body)

    def _collect_block_locals(self, stmt: ast.Stmt | None) -> None:
        if isinstance(stmt, ast.Block):
            for child in stmt.stmts:
                if isinstance(child, ast.Decl):
                    width = self._range_width(child.range)
                    for decl in child.declarators:
                        self._merge(decl.name, child.kind, child.line,
                                    width, False)
                else:
                    self._collect_block_locals(child)
        elif isinstance(stmt, ast.IfStmt):
            self._collect_block_locals(stmt.then_stmt)
            self._collect_block_locals(stmt.else_stmt)
        elif isinstance(stmt, ast.CaseStmt):
            for item in stmt.items:
                self._collect_block_locals(item.stmt)
        elif isinstance(stmt, (ast.ForStmt, ast.WhileStmt, ast.RepeatStmt,
                               ast.ForeverStmt)):
            self._collect_block_locals(stmt.body)
        elif isinstance(stmt, (ast.DelayStmt, ast.EventControlStmt,
                               ast.WaitStmt)):
            self._collect_block_locals(stmt.stmt)

    def is_declared(self, name: str) -> bool:
        return (name in self.kinds or name in self.params
                or name in self.functions)

    def kind_of(self, name: str) -> str | None:
        return self.kinds.get(name)


class _NotStatic(Exception):
    pass


def _static_int(expr: ast.Expr, params: dict[str, int | None]) -> int:
    if isinstance(expr, ast.Number):
        try:
            from ..sim.values import from_literal
            value = from_literal(expr.text)
        except (ValueError, KeyError):
            raise _NotStatic() from None
        if value.has_unknown:
            raise _NotStatic()
        return value.to_int()
    if isinstance(expr, ast.Identifier):
        value = params.get(expr.name)
        if value is None:
            raise _NotStatic()
        return value
    if isinstance(expr, ast.Binary):
        left = _static_int(expr.left, params)
        right = _static_int(expr.right, params)
        ops = {"+": lambda: left + right, "-": lambda: left - right,
               "*": lambda: left * right,
               "/": lambda: left // right if right else 0}
        if expr.op in ops:
            return ops[expr.op]()
        raise _NotStatic()
    if isinstance(expr, ast.Unary) and expr.op == "-":
        return -_static_int(expr.operand, params)
    raise _NotStatic()


def _try_static(expr: ast.Expr,
                params: dict[str, int | None]) -> int | None:
    try:
        return _static_int(expr, params)
    except _NotStatic:
        return None


class Checker:
    """Semantic lint over a parsed source file."""

    def __init__(self, source: ast.SourceFile, filename: str):
        self.source = source
        self.filename = filename
        self.diagnostics: list[Diagnostic] = []
        self.module_names = {m.name for m in source.modules}
        self.module_table = {m.name: m for m in source.modules}

    def _emit(self, severity: str, message: str, line: int) -> None:
        self.diagnostics.append(Diagnostic(severity=severity,
                                           message=message, line=line,
                                           filename=self.filename))

    def check(self) -> list[Diagnostic]:
        for module in self.source.modules:
            self._check_module(module)
        return self.diagnostics

    # -- per module ------------------------------------------------------

    def _check_module(self, module: ast.Module) -> None:
        symbols = _ModuleSymbols(module)
        for name, line in symbols.duplicates:
            self._emit(ERROR, f"duplicate declaration of '{name}'", line)
        for port in module.ports:
            if symbols.kind_of(port.name) == "port":
                self._emit(ERROR,
                           f"port '{port.name}' is not declared", port.line)
        instance_names = {
            inst.name
            for item in module.items_of_type(ast.Instantiation)
            for inst in item.instances
        }
        for item in module.items:
            if isinstance(item, ast.ContinuousAssign):
                self._check_continuous_assign(item, symbols)
            elif isinstance(item, ast.Always):
                if item.senslist is not None:
                    for sens in item.senslist.items:
                        if sens.signal is not None:
                            self._check_expr(sens.signal, symbols,
                                             instance_names)
                self._check_stmt(item.body, symbols, instance_names,
                                 procedural=True)
            elif isinstance(item, ast.Initial):
                self._check_stmt(item.body, symbols, instance_names,
                                 procedural=True)
            elif isinstance(item, ast.Instantiation):
                self._check_instantiation(item, symbols, instance_names)
            elif isinstance(item, ast.Decl):
                for decl in item.declarators:
                    if decl.init is not None:
                        self._check_expr(decl.init, symbols, instance_names)

    def _check_continuous_assign(self, item: ast.ContinuousAssign,
                                 symbols: _ModuleSymbols) -> None:
        for lhs, rhs in item.assignments:
            base = _base_name(lhs)
            if base is not None:
                kind = symbols.kind_of(base)
                if kind is None and not symbols.is_declared(base):
                    self._emit(ERROR,
                               f"identifier '{base}' is not declared",
                               lhs.line)
                elif kind in _VARIABLE_KINDS:
                    self._emit(ERROR,
                               f"reg '{base}' cannot be driven by a "
                               f"continuous assignment", lhs.line)
            self._check_expr(rhs, symbols, set())
            self._check_lvalue_indices(lhs, symbols)
            self._check_assign_widths(lhs, rhs, symbols, item.line)

    def _check_assign_widths(self, lhs: ast.Expr, rhs: ast.Expr,
                             symbols: _ModuleSymbols, line: int) -> None:
        lhs_width = _expr_width(lhs, symbols)
        rhs_width = _expr_width(rhs, symbols)
        if lhs_width is None or rhs_width is None:
            return
        if rhs_width > lhs_width:
            self._emit(WARNING,
                       f"assignment truncates {rhs_width} bits to "
                       f"{lhs_width} bits", line)

    # -- statements --------------------------------------------------------

    def _check_stmt(self, stmt: ast.Stmt | None, symbols: _ModuleSymbols,
                    instances: set[str], procedural: bool) -> None:
        if stmt is None:
            return
        if isinstance(stmt, ast.Block):
            for child in stmt.stmts:
                if isinstance(child, ast.Stmt):
                    self._check_stmt(child, symbols, instances, procedural)
            return
        if isinstance(stmt, (ast.BlockingAssign, ast.NonBlockingAssign)):
            base = _base_name(stmt.lhs)
            if base is not None:
                kind = symbols.kind_of(base)
                if kind is None and not symbols.is_declared(base):
                    self._emit(ERROR,
                               f"identifier '{base}' is not declared",
                               stmt.line)
                elif kind in ("wire", "tri", "supply0", "supply1", "port"):
                    self._emit(ERROR,
                               f"cannot assign to wire '{base}' in a "
                               f"procedural context; declare it as reg",
                               stmt.line)
            self._check_expr(stmt.rhs, symbols, instances)
            self._check_lvalue_indices(stmt.lhs, symbols)
            return
        if isinstance(stmt, ast.IfStmt):
            self._check_expr(stmt.cond, symbols, instances)
            self._check_stmt(stmt.then_stmt, symbols, instances, procedural)
            self._check_stmt(stmt.else_stmt, symbols, instances, procedural)
            return
        if isinstance(stmt, ast.CaseStmt):
            self._check_expr(stmt.expr, symbols, instances)
            for item in stmt.items:
                for expr in item.exprs:
                    self._check_expr(expr, symbols, instances)
                self._check_stmt(item.stmt, symbols, instances, procedural)
            return
        if isinstance(stmt, ast.ForStmt):
            self._check_stmt(stmt.init, symbols, instances, procedural)
            self._check_expr(stmt.cond, symbols, instances)
            self._check_stmt(stmt.step, symbols, instances, procedural)
            self._check_stmt(stmt.body, symbols, instances, procedural)
            return
        if isinstance(stmt, (ast.WhileStmt,)):
            self._check_expr(stmt.cond, symbols, instances)
            self._check_stmt(stmt.body, symbols, instances, procedural)
            return
        if isinstance(stmt, ast.RepeatStmt):
            self._check_expr(stmt.count, symbols, instances)
            self._check_stmt(stmt.body, symbols, instances, procedural)
            return
        if isinstance(stmt, ast.ForeverStmt):
            self._check_stmt(stmt.body, symbols, instances, procedural)
            return
        if isinstance(stmt, (ast.DelayStmt,)):
            self._check_stmt(stmt.stmt, symbols, instances, procedural)
            return
        if isinstance(stmt, ast.EventControlStmt):
            for sens in stmt.senslist.items:
                if sens.signal is not None:
                    self._check_expr(sens.signal, symbols, instances)
            self._check_stmt(stmt.stmt, symbols, instances, procedural)
            return
        if isinstance(stmt, ast.WaitStmt):
            self._check_expr(stmt.cond, symbols, instances)
            self._check_stmt(stmt.stmt, symbols, instances, procedural)
            return
        if isinstance(stmt, ast.SysTaskCall):
            for arg in stmt.args:
                if not isinstance(arg, ast.StringLiteral):
                    self._check_expr(arg, symbols, instances)
            return

    def _check_lvalue_indices(self, lhs: ast.Expr,
                              symbols: _ModuleSymbols) -> None:
        if isinstance(lhs, ast.Index):
            self._check_expr(lhs.index, symbols, set())
        elif isinstance(lhs, ast.PartSelect):
            self._check_expr(lhs.msb, symbols, set())
            self._check_expr(lhs.lsb, symbols, set())
        elif isinstance(lhs, ast.Concat):
            for part in lhs.parts:
                self._check_lvalue_indices(part, symbols)

    # -- expressions -------------------------------------------------------

    def _check_expr(self, expr: ast.Expr, symbols: _ModuleSymbols,
                    instances: set[str]) -> None:
        if isinstance(expr, ast.Identifier):
            if not symbols.is_declared(expr.name) and \
                    expr.name not in instances:
                self._emit(ERROR,
                           f"identifier '{expr.name}' is not declared",
                           expr.line)
            return
        if isinstance(expr, ast.HierarchicalId):
            return  # cross-module probes are resolved at elaboration
        if isinstance(expr, (ast.Number, ast.StringLiteral,
                             ast.RealLiteral)):
            return
        if isinstance(expr, ast.Unary):
            self._check_expr(expr.operand, symbols, instances)
            return
        if isinstance(expr, ast.Binary):
            self._check_expr(expr.left, symbols, instances)
            self._check_expr(expr.right, symbols, instances)
            return
        if isinstance(expr, ast.Ternary):
            self._check_expr(expr.cond, symbols, instances)
            self._check_expr(expr.if_true, symbols, instances)
            self._check_expr(expr.if_false, symbols, instances)
            return
        if isinstance(expr, ast.Concat):
            for part in expr.parts:
                self._check_expr(part, symbols, instances)
            return
        if isinstance(expr, ast.Repl):
            self._check_expr(expr.count, symbols, instances)
            for part in expr.parts:
                self._check_expr(part, symbols, instances)
            return
        if isinstance(expr, ast.Index):
            self._check_expr(expr.base, symbols, instances)
            self._check_expr(expr.index, symbols, instances)
            return
        if isinstance(expr, ast.PartSelect):
            self._check_expr(expr.base, symbols, instances)
            self._check_expr(expr.msb, symbols, instances)
            self._check_expr(expr.lsb, symbols, instances)
            return
        if isinstance(expr, ast.FunctionCall):
            if not expr.is_system and expr.name not in symbols.functions:
                self._emit(ERROR,
                           f"function '{expr.name}' is not declared",
                           expr.line)
            for arg in expr.args:
                self._check_expr(arg, symbols, instances)
            return

    # -- instances -----------------------------------------------------------

    def _check_instantiation(self, item: ast.Instantiation,
                             symbols: _ModuleSymbols,
                             instances: set[str]) -> None:
        target = self.module_table.get(item.module)
        if target is None:
            if item.module not in self.module_names:
                self._emit(WARNING,
                           f"module '{item.module}' is not defined in this "
                           f"file", item.line)
            port_names = None
        else:
            port_names = {p.name for p in target.ports}
            for port_decl in target.items_of_type(ast.PortDecl):
                port_names.update(port_decl.names)
        for instance in item.instances:
            for conn in instance.connections:
                if conn.name is not None and port_names is not None and \
                        conn.name not in port_names:
                    self._emit(ERROR,
                               f"module '{item.module}' has no port "
                               f"'{conn.name}'", conn.line)
                if conn.expr is not None:
                    self._check_expr(conn.expr, symbols, instances)


def _base_name(lhs: ast.Expr) -> str | None:
    if isinstance(lhs, ast.Identifier):
        return lhs.name
    if isinstance(lhs, (ast.Index, ast.PartSelect)):
        return _base_name(lhs.base)
    return None


def _expr_width(expr: ast.Expr,
                symbols: _ModuleSymbols) -> int | None:
    """Best-effort static bit width (None when unknown)."""
    if isinstance(expr, ast.Number):
        return expr.width or 32
    if isinstance(expr, ast.Identifier):
        if expr.name in symbols.params:
            return 32
        return symbols.widths.get(expr.name)
    if isinstance(expr, ast.Unary):
        if expr.op in ("!", "&", "~&", "|", "~|", "^", "~^", "^~"):
            return 1
        return _expr_width(expr.operand, symbols)
    if isinstance(expr, ast.Binary):
        if expr.op in ("&&", "||", "==", "!=", "===", "!==", "<", "<=",
                       ">", ">="):
            return 1
        if expr.op in ("<<", ">>", "<<<", ">>>"):
            return _expr_width(expr.left, symbols)
        left = _expr_width(expr.left, symbols)
        right = _expr_width(expr.right, symbols)
        if left is None or right is None:
            return None
        return max(left, right)
    if isinstance(expr, ast.Ternary):
        left = _expr_width(expr.if_true, symbols)
        right = _expr_width(expr.if_false, symbols)
        if left is None or right is None:
            return None
        return max(left, right)
    if isinstance(expr, ast.Concat):
        widths = [_expr_width(p, symbols) for p in expr.parts]
        if any(w is None for w in widths):
            return None
        return sum(widths)
    if isinstance(expr, ast.Repl):
        try:
            count = _static_int(expr.count, {})
        except _NotStatic:
            return None
        widths = [_expr_width(p, symbols) for p in expr.parts]
        if any(w is None for w in widths):
            return None
        return count * sum(widths)
    if isinstance(expr, ast.Index):
        base = _base_name(expr)
        if base is not None and base in symbols.arrays:
            return symbols.widths.get(base)
        return 1
    if isinstance(expr, ast.PartSelect):
        if expr.mode == ":":
            try:
                msb = _static_int(expr.msb, symbols.params)
                lsb = _static_int(expr.lsb, symbols.params)
            except _NotStatic:
                return None
            return abs(msb - lsb) + 1
        return _try_static(expr.lsb, symbols.params)
    return None


def check_source(text: str, filename: str = "<input>") -> CheckResult:
    """Parse + lint ``text``; syntax errors become single-diagnostic results."""
    result = CheckResult(filename=filename)
    try:
        source = parse(text, filename)
    except VerilogError as exc:
        result.diagnostics.append(Diagnostic(
            severity=ERROR, message=exc.message, line=exc.line,
            filename=filename))
        return result
    result.diagnostics = Checker(source, filename).check()
    return result


def yosys_feedback(text: str, filename: str = "./design.v") -> str | None:
    """First ERROR line in yosys format, or None if the file checks clean."""
    return check_source(text, filename).first_error()
