"""Yosys-style syntax/semantic checker (the paper's `yosys-checker` box).

Use :func:`check_source` for the full diagnostic list or
:func:`yosys_feedback` for the single error line the repair dataset pairs
with broken Verilog (paper Fig. 6).
"""

from .lint import Checker, check_source, yosys_feedback
from .messages import ERROR, WARNING, CheckResult, Diagnostic

__all__ = [
    "check_source", "yosys_feedback", "Checker",
    "CheckResult", "Diagnostic", "ERROR", "WARNING",
]
