"""Parallel work execution over a ``concurrent.futures`` pool.

:class:`WorkPool` is the generic layer: map a picklable module-level
function over keyed work items on worker processes (or threads, or the
calling thread for ``jobs=1``), with a completion callback per item.
:class:`ShardRunner` specialises it for augmentation shards; the
evaluation engine (``repro.eval.engine``) maps benchmark cells over the
same pool.

Because every unit of work derives its randomness from *content* hashes
(:func:`repro.core.content_seed`, the behavioural models' stable
hashes), results are independent of which worker ran an item and of the
submission order: parallelism is purely a wall-clock optimisation and
never changes output.
"""

from __future__ import annotations

import concurrent.futures
from collections.abc import Callable
from typing import TypeVar

from ..core.pipeline import PipelineConfig, augment_file
from ..core.records import Record
from .store import SourceFile, sha256_text

K = TypeVar("K")
W = TypeVar("W")
R = TypeVar("R")


class WorkPool:
    """Map a function over keyed work items, optionally in parallel.

    ``jobs <= 1`` runs in-process (no pool, no pickling); ``jobs > 1``
    uses a :class:`~concurrent.futures.ProcessPoolExecutor` by default,
    or threads when ``use_threads=True`` (useful where fork is
    unavailable or the workload is I/O bound).  ``fn`` must be a
    module-level callable and both items and results must pickle when
    processes are used.
    """

    def __init__(self, jobs: int = 1, use_threads: bool = False):
        self.jobs = max(1, jobs)
        self.use_threads = use_threads
        self._persistent = False
        self._executor: concurrent.futures.Executor | None = None
        self._executor_workers = 0
        self._slots: list[concurrent.futures.Executor] = []

    def _pool_cls(self):
        return (concurrent.futures.ThreadPoolExecutor if self.use_threads
                else concurrent.futures.ProcessPoolExecutor)

    def open(self) -> "WorkPool":
        """Switch to a persistent executor reused across :meth:`map`
        calls (until :meth:`close`); created lazily on first use.

        Worth it for workloads that map many small rounds — e.g. the
        trainer's one-``map``-per-optimizer-step — where per-call pool
        spawn would dominate; one-shot sweeps don't need it.
        """
        self._persistent = True
        return self

    def close(self) -> None:
        self._persistent = False
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None
            self._executor_workers = 0
        for slot in self._slots:
            slot.shutdown()
        self._slots = []

    def __enter__(self) -> "WorkPool":
        return self.open()

    def __exit__(self, *exc) -> None:
        self.close()

    def map(self, fn: Callable[[W], R], items: dict[K, W],
            on_done: Callable[[K, R], None] | None = None) -> dict[K, R]:
        """Apply ``fn`` to every item; returns ``key -> result``.

        ``on_done`` fires as each item completes (in completion order) —
        callers use it to write cache entries eagerly so an interrupted
        run still warms the cache for finished work.
        """
        results: dict[K, R] = {}
        if self.jobs == 1 or len(items) <= 1:
            for key, item in items.items():
                results[key] = fn(item)
                if on_done is not None:
                    on_done(key, results[key])
            return results
        if self._persistent:
            return self._drain(self._persistent_executor(len(items)),
                               fn, items, on_done)
        with self._pool_cls()(max_workers=min(self.jobs,
                                              len(items))) as pool:
            return self._drain(pool, fn, items, on_done)

    def _persistent_executor(self,
                             width: int) -> concurrent.futures.Executor:
        """The reused executor, sized lazily to ``min(jobs, width)``.

        The first ``map`` call sizes the pool to what it can actually
        use; a later, wider call grows it (up to ``jobs``) by swapping
        in a bigger executor.  It never shrinks — workers already
        spawned stay warm for the next round.
        """
        want = min(self.jobs, max(1, width))
        if self._executor is not None and self._executor_workers < want:
            self._executor.shutdown()
            self._executor = None
        if self._executor is None:
            self._executor = self._pool_cls()(max_workers=want)
            self._executor_workers = want
        return self._executor

    @staticmethod
    def _drain(pool: concurrent.futures.Executor,
               fn: Callable[[W], R], items: dict[K, W],
               on_done: Callable[[K, R], None] | None) -> dict[K, R]:
        """Collect every future; successes fire ``on_done`` even when a
        sibling item fails, then the first error (in submission order)
        propagates — so eager cache writes survive partial failures."""
        results: dict[K, R] = {}
        errors: dict[int, BaseException] = {}
        order = {key: pos for pos, key in enumerate(items)}
        futures = {pool.submit(fn, item): key
                   for key, item in items.items()}
        for future in concurrent.futures.as_completed(futures):
            key = futures[future]
            try:
                results[key] = future.result()
            except BaseException as exc:       # noqa: BLE001 - re-raised
                errors[order[key]] = exc
                continue
            if on_done is not None:
                on_done(key, results[key])
        if errors:
            raise errors[min(errors)]
        return results

    # -- affinity lanes ---------------------------------------------------

    def ensure_slots(self, count: int) -> int:
        """Provision ``count`` single-worker lanes for :meth:`slot_map`.

        Each lane is its own one-worker executor, so work submitted to
        slot ``s`` always runs on the *same* resident worker — the
        affinity the resident-trainer protocol needs (worker state
        installed on lane ``s`` is only ever addressed via lane ``s``).
        Lanes persist until :meth:`close`; calling again with a larger
        ``count`` adds lanes, never recycles existing ones.
        """
        count = min(max(1, count), self.jobs)
        while len(self._slots) < count:
            self._slots.append(self._pool_cls()(max_workers=1))
        return count

    def slot_map(self, fn: Callable[[W], R],
                 items: dict[int, W]) -> dict[int, R]:
        """Run ``fn(items[s])`` on lane ``s`` for every slot in ``items``.

        Submits to every lane first, then drains; all failures are
        collected and the lowest-slot error wins (deterministic), after
        every lane has finished its round — no lane is left mid-call.
        """
        for slot in items:
            if not 0 <= slot < len(self._slots):
                raise ValueError(f"slot {slot} not provisioned "
                                 f"(have {len(self._slots)} lanes)")
        futures = {slot: self._slots[slot].submit(fn, item)
                   for slot, item in sorted(items.items())}
        results: dict[int, R] = {}
        errors: dict[int, BaseException] = {}
        for slot, future in futures.items():
            try:
                results[slot] = future.result()
            except BaseException as exc:       # noqa: BLE001 - re-raised
                errors[slot] = exc
        if errors:
            raise errors[min(errors)]
        return results


def run_shard(payload: tuple[list[tuple[str, str]], PipelineConfig],
              ) -> dict[str, list[Record]]:
    """Augment one shard: ``([(digest, path), ...], config)`` → records.

    Module-level (picklable) so it can run in a process pool.  Workers
    re-read each source from disk — only paths and digests cross the
    process boundary going in — so peak memory stays bounded by the
    largest in-flight shard, not the corpus.  Duplicate contents within
    a shard are computed once.
    """
    members, config = payload
    results: dict[str, list[Record]] = {}
    for digest, path in members:
        if digest in results:
            continue
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
        if sha256_text(text) != digest:
            raise RuntimeError(
                f"{path} changed on disk mid-run (digest mismatch); "
                f"re-run to pick up the new content")
        results[digest] = augment_file(text, config)
    return results


class ShardRunner:
    """Execute augmentation shards across a :class:`WorkPool`."""

    def __init__(self, config: PipelineConfig | None = None, jobs: int = 1,
                 use_threads: bool = False):
        self.config = config or PipelineConfig()
        self.jobs = max(1, jobs)
        self.use_threads = use_threads

    def run(self, shards: dict[int, list[SourceFile]],
            on_shard_done: Callable[[int, dict[str, list[Record]]], None]
            | None = None) -> dict[int, dict[str, list[Record]]]:
        """Augment every shard; returns ``shard -> digest -> records``."""
        payloads = {index: ([(s.digest, s.path) for s in members],
                            self.config)
                    for index, members in shards.items()}
        pool = WorkPool(jobs=self.jobs, use_threads=self.use_threads)
        return pool.map(run_shard, payloads, on_done=on_shard_done)
