"""Parallel shard execution over a ``concurrent.futures`` pool.

``ShardRunner`` maps shards onto worker processes (or threads, or the
calling thread for ``jobs=1``).  Workers re-read each source from disk —
only paths and digests cross the process boundary going in, and finished
:class:`~repro.core.Record` lists coming back — so peak memory stays
bounded by the largest in-flight shard, not the corpus.

Because per-file seeds are content-derived (:func:`repro.core.content_seed`),
the records a worker produces are independent of which worker ran the
shard, the shard count, and the submission order: parallelism is purely a
wall-clock optimisation and never changes output.
"""

from __future__ import annotations

import concurrent.futures
from collections.abc import Callable, Iterable

from ..core.pipeline import PipelineConfig, augment_file
from ..core.records import Record
from .store import SourceFile, sha256_text


def run_shard(members: list[tuple[str, str]],
              config: PipelineConfig) -> dict[str, list[Record]]:
    """Augment one shard: ``[(digest, path), ...] -> digest -> records``.

    Module-level (picklable) so it can run in a process pool.  Duplicate
    contents within a shard are computed once.
    """
    results: dict[str, list[Record]] = {}
    for digest, path in members:
        if digest in results:
            continue
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
        if sha256_text(text) != digest:
            raise RuntimeError(
                f"{path} changed on disk mid-run (digest mismatch); "
                f"re-run to pick up the new content")
        results[digest] = augment_file(text, config)
    return results


class ShardRunner:
    """Execute shards across a worker pool.

    ``jobs <= 1`` runs in-process (no pool, no pickling); ``jobs > 1``
    uses a :class:`~concurrent.futures.ProcessPoolExecutor` by default,
    or threads when ``use_threads=True`` (useful where fork is
    unavailable or the workload is I/O bound).
    """

    def __init__(self, config: PipelineConfig | None = None, jobs: int = 1,
                 use_threads: bool = False):
        self.config = config or PipelineConfig()
        self.jobs = max(1, jobs)
        self.use_threads = use_threads

    def run(self, shards: dict[int, list[SourceFile]],
            on_shard_done: Callable[[int, dict[str, list[Record]]], None]
            | None = None) -> dict[int, dict[str, list[Record]]]:
        """Augment every shard; returns ``shard -> digest -> records``.

        ``on_shard_done`` fires as each shard completes (in completion
        order) — the service uses it to write cache entries eagerly so
        an interrupted run still warms the cache for finished shards.
        """
        payloads = {index: [(s.digest, s.path) for s in members]
                    for index, members in shards.items()}
        results: dict[int, dict[str, list[Record]]] = {}
        if self.jobs == 1 or len(payloads) <= 1:
            for index, members in payloads.items():
                results[index] = run_shard(members, self.config)
                if on_shard_done is not None:
                    on_shard_done(index, results[index])
            return results
        pool_cls = (concurrent.futures.ThreadPoolExecutor if self.use_threads
                    else concurrent.futures.ProcessPoolExecutor)
        with pool_cls(max_workers=min(self.jobs, len(payloads))) as pool:
            futures = {pool.submit(run_shard, members, self.config): index
                       for index, members in payloads.items()}
            for future in concurrent.futures.as_completed(futures):
                index = futures[future]
                results[index] = future.result()
                if on_shard_done is not None:
                    on_shard_done(index, results[index])
        return results
