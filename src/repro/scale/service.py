"""The sharded, parallel, incremental augmentation service.

Orchestrates the subsystem end-to-end::

    CorpusStore ──▶ ResultCache lookups ──▶ ShardRunner (dirty shards)
         │                                        │
         └────────── canonical merge ◀────────────┘
                          │
                      ScaleReport

The merged dataset is byte-identical to running the serial
:class:`~repro.core.AugmentationPipeline` over the same corpus sorted by
content digest — regardless of ``jobs``, shard count, input order, or
which shards came from the cache.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..core.pipeline import PipelineConfig
from ..core.records import Dataset, Record
from ..core.script_aug import Describer, script_records
from .cache import ResultCache, shard_key
from .report import ScaleReport
from .runner import ShardRunner
from .store import DEFAULT_NUM_SHARDS, CorpusStore


class AugmentationService:
    """Reusable front-end over store + cache + runner."""

    def __init__(self, config: PipelineConfig | None = None, jobs: int = 1,
                 cache_dir: str | None = None,
                 num_shards: int = DEFAULT_NUM_SHARDS,
                 use_threads: bool = False):
        self.config = config or PipelineConfig()
        self.jobs = max(1, jobs)
        self.cache_dir = cache_dir
        self.num_shards = num_shards
        self.use_threads = use_threads

    def run(self, paths: Iterable[str], eda_scripts: Iterable[str] = (),
            describer: Describer | None = None) -> ScaleReport:
        config = self.config
        store = CorpusStore(paths, num_shards=self.num_shards)
        shards = store.shards()
        cache = (ResultCache(self.cache_dir, config.fingerprint())
                 if self.cache_dir else None)

        by_digest: dict[str, list[Record]] = {}
        dirty: dict[int, list] = {}
        keys: dict[int, str] = {}
        shards_cached = 0
        for index, members in shards.items():
            keys[index] = shard_key(config.fingerprint(),
                                    [s.digest for s in members])
            cached = (cache.lookup(index, keys[index])
                      if cache is not None else None)
            if cached is not None:
                shards_cached += 1
                by_digest.update(cached)
            else:
                dirty[index] = members

        if dirty:
            def on_shard_done(index: int,
                              results: dict[str, list[Record]]) -> None:
                if cache is not None:
                    cache.store(index, keys[index], results)
                    cache.flush()   # interrupted runs keep finished shards

            runner = ShardRunner(config, jobs=self.jobs,
                                 use_threads=self.use_threads)
            for results in runner.run(dirty, on_shard_done).values():
                by_digest.update(results)
        if cache is not None:
            cache.flush()

        dataset = Dataset()
        for source in store.merge_order():
            dataset.extend(by_digest[source.digest])
        if config.eda_scripts and eda_scripts:
            if describer is None:
                from ..core.script_aug import default_describer
                describer = default_describer()
            dataset.extend(script_records(eda_scripts, describer))

        raw_count = len(dataset)
        trimmed = dataset.trimmed(config.max_tokens)
        return ScaleReport(
            dataset=trimmed, raw_count=raw_count,
            trimmed_count=raw_count - len(trimmed),
            per_task=trimmed.task_counts(),
            files_total=len(store.discover()),
            shards_total=len(shards), shards_cached=shards_cached,
            shards_computed=len(dirty),
            cache_hits=cache.hits if cache is not None else 0,
            cache_misses=cache.misses if cache is not None else 0,
            cache_enabled=cache is not None, jobs=self.jobs)


def augment_distributed(paths: Iterable[str],
                        config: PipelineConfig | None = None, jobs: int = 1,
                        cache_dir: str | None = None,
                        num_shards: int = DEFAULT_NUM_SHARDS,
                        use_threads: bool = False,
                        eda_scripts: Iterable[str] = (),
                        describer: Describer | None = None) -> ScaleReport:
    """One-shot convenience wrapper around :class:`AugmentationService`."""
    service = AugmentationService(config, jobs=jobs, cache_dir=cache_dir,
                                  num_shards=num_shards,
                                  use_threads=use_threads)
    return service.run(paths, eda_scripts=eda_scripts, describer=describer)
