"""Sharded, parallel, cache-aware augmentation service.

The one-shot :class:`~repro.core.AugmentationPipeline` scaled out:

* :mod:`store`   — lazy corpus discovery + deterministic sharding
* :mod:`cache`   — content-addressed shard results with a manifest
* :mod:`runner`  — ``concurrent.futures`` execution of dirty shards
* :mod:`report`  — merged :class:`ScaleReport` (a ``PipelineReport``)
* :mod:`service` — the orchestrator behind ``repro augment-dist``

Output is order-, parallelism- and cache-invariant: see
``ROADMAP.md`` ("repro.scale architecture") for the guarantees.
"""

from .cache import CACHE_FORMAT_VERSION, ResultCache, shard_key
from .report import ScaleReport
from .runner import ShardRunner, run_shard
from .service import AugmentationService, augment_distributed
from .store import (DEFAULT_NUM_SHARDS, VERILOG_EXTENSIONS, CorpusStore,
                    SourceFile, sha256_text, shard_of_path)

__all__ = [
    "CorpusStore", "SourceFile", "sha256_text", "shard_of_path",
    "VERILOG_EXTENSIONS", "DEFAULT_NUM_SHARDS",
    "ResultCache", "shard_key", "CACHE_FORMAT_VERSION",
    "ShardRunner", "run_shard",
    "ScaleReport", "AugmentationService", "augment_distributed",
]
