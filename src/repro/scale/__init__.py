"""Sharded, parallel, cache-aware execution infrastructure.

The one-shot :class:`~repro.core.AugmentationPipeline` scaled out —
and the generic work-pool + content-addressed-cache layer that the
evaluation engine (:mod:`repro.eval.engine`) builds on:

* :mod:`store`   — lazy corpus discovery + deterministic sharding
* :mod:`cache`   — :class:`ManifestCache` (generic), :class:`ResultCache`
  (augmentation shards), :class:`LRUCache` (bounded in-memory layer)
* :mod:`runner`  — :class:`WorkPool` (generic) + :class:`ShardRunner`
* :mod:`report`  — merged :class:`ScaleReport` (a ``PipelineReport``)
* :mod:`service` — the orchestrator behind ``repro augment-dist``

Output is order-, parallelism- and cache-invariant: see
``ROADMAP.md`` ("repro.scale architecture") for the guarantees.
"""

from .cache import (CACHE_FORMAT_VERSION, LRUCache, ManifestCache,
                    ResultCache, shard_key)
from .report import ScaleReport
from .runner import ShardRunner, WorkPool, run_shard
from .service import AugmentationService, augment_distributed
from .store import (DEFAULT_NUM_SHARDS, VERILOG_EXTENSIONS, CorpusStore,
                    SourceFile, sha256_text, shard_of_path)

__all__ = [
    "CorpusStore", "SourceFile", "sha256_text", "shard_of_path",
    "VERILOG_EXTENSIONS", "DEFAULT_NUM_SHARDS",
    "ManifestCache", "ResultCache", "LRUCache", "shard_key",
    "CACHE_FORMAT_VERSION",
    "WorkPool", "ShardRunner", "run_shard",
    "ScaleReport", "AugmentationService", "augment_distributed",
]
