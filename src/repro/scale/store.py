"""Lazy corpus discovery and deterministic sharding.

``CorpusStore`` walks the given files/directories, hashes each source and
assigns it to a shard.  Two hashes play different roles:

* **identity digest** — SHA-256 of the file's resolved *path*.  Shard
  membership is keyed on identity, so editing a file keeps it in the same
  shard (only that shard's cache key changes → exactly one shard is
  recomputed).
* **content digest** — SHA-256 of the file's *text*.  Cache keys, per-file
  seeds and the canonical merge order are keyed on content, so results are
  invariant under corpus reordering and duplication.

Discovery streams: each file is read once to hash it and the text is
dropped immediately — the corpus never sits in memory as a whole.
"""

from __future__ import annotations

import hashlib
import os
from collections.abc import Iterable, Iterator
from dataclasses import dataclass

#: File suffixes treated as Verilog sources when walking directories.
VERILOG_EXTENSIONS = (".v", ".sv", ".vh", ".svh")

DEFAULT_NUM_SHARDS = 16


def sha256_text(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class SourceFile:
    """One discovered corpus member."""

    path: str      #: resolved absolute path
    digest: str    #: SHA-256 of the file content
    order: int     #: discovery index (stable tie-break for duplicates)
    shard: int     #: shard index this file belongs to

    def read(self) -> str:
        with open(self.path, encoding="utf-8") as handle:
            return handle.read()


def shard_of_path(path: str, num_shards: int) -> int:
    """Deterministic shard index from a file's identity (its path)."""
    digest = hashlib.sha256(os.path.abspath(path).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % num_shards


class CorpusStore:
    """Discover Verilog sources lazily and group them into shards."""

    def __init__(self, paths: Iterable[str],
                 num_shards: int = DEFAULT_NUM_SHARDS,
                 extensions: tuple[str, ...] = VERILOG_EXTENSIONS):
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        self.paths = list(paths)
        self.num_shards = num_shards
        self.extensions = extensions
        self._files: list[SourceFile] | None = None

    def _walk(self) -> Iterator[str]:
        """Explicit files as given; directories walked in sorted order."""
        for path in self.paths:
            if os.path.isdir(path):
                for root, dirs, names in os.walk(path):
                    dirs.sort()
                    for name in sorted(names):
                        if name.endswith(self.extensions):
                            yield os.path.join(root, name)
            else:
                yield path

    def discover(self) -> list[SourceFile]:
        """Hash every source (cached after the first call)."""
        if self._files is None:
            files = []
            for order, path in enumerate(self._walk()):
                resolved = os.path.abspath(path)
                with open(resolved, encoding="utf-8") as handle:
                    digest = sha256_text(handle.read())
                files.append(SourceFile(
                    path=resolved, digest=digest, order=order,
                    shard=shard_of_path(resolved, self.num_shards)))
            self._files = files
        return self._files

    def shards(self) -> dict[int, list[SourceFile]]:
        """Non-empty shards, files in deterministic (content) order."""
        grouped: dict[int, list[SourceFile]] = {}
        for source in self.discover():
            grouped.setdefault(source.shard, []).append(source)
        for members in grouped.values():
            members.sort(key=lambda s: (s.digest, s.order))
        return dict(sorted(grouped.items()))

    def merge_order(self) -> list[SourceFile]:
        """Canonical output order: by content digest, then discovery
        index — identical no matter how the corpus was listed or split
        across workers."""
        return sorted(self.discover(), key=lambda s: (s.digest, s.order))
