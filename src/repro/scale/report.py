"""Merged output of a sharded run, in the legacy report shape.

``ScaleReport`` *is a* :class:`~repro.core.PipelineReport` — everything
downstream (``dataset_stats``, ``render_table2``, the experiment
drivers) consumes it unchanged — plus the shard/cache accounting that
the ``augment-dist`` CLI and the scale benchmark print.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.pipeline import PipelineReport


@dataclass
class ScaleReport(PipelineReport):
    """Pipeline report + sharded-execution accounting."""

    files_total: int = 0
    shards_total: int = 0
    shards_cached: int = 0      #: served straight from the ResultCache
    shards_computed: int = 0    #: executed by the ShardRunner this run
    cache_hits: int = 0
    cache_misses: int = 0
    cache_enabled: bool = False
    jobs: int = 1

    def summary(self) -> str:
        cache = (f"cache {self.cache_hits} hit(s) / "
                 f"{self.cache_misses} miss(es)"
                 if self.cache_enabled else "cache disabled")
        return (f"{len(self.dataset)} records from {self.files_total} "
                f"file(s) in {self.shards_total} shard(s) "
                f"[{self.shards_cached} cached, {self.shards_computed} "
                f"computed, jobs={self.jobs}, {cache}]")
