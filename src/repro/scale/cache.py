"""Content-addressed, manifest-indexed result caches.

:class:`ManifestCache` is the generic layer: a directory of atomically
written entry files indexed by ``manifest.json``.  Every entry lives in a
*slot* (a stable identity — "which piece of work") and is stamped with a
*key* (a content hash — "computed from what").  A lookup whose key no
longer matches is a miss, so touching one input invalidates exactly the
slots derived from it, while a fingerprint or format-version change
discards the whole cache.

Two subclasses specialise the payload encoding:

* :class:`ResultCache` — augmentation shards (``digest -> records`` in
  JSONL, one line per source file), used by ``repro augment-dist``;
* ``repro.eval.engine.EvalCache`` — one JSON blob per benchmark cell.

Invalidation rules (see ROADMAP "repro.scale architecture"):

* a slot's **key** hashes the config fingerprint plus the content of its
  inputs — touching one input changes exactly the affected keys;
* a manifest written under a different fingerprint or format version is
  discarded wholesale;
* entry files are written atomically, so a crashed writer leaves either
  the old entry or the new one, never a torn file.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections import OrderedDict
from typing import Generic, TypeVar

from ..core.records import Record, atomic_write_text

#: Bump when the shard line format changes; invalidates old caches.
CACHE_FORMAT_VERSION = 1

K = TypeVar("K")
V = TypeVar("V")


class LRUCache(Generic[K, V]):
    """A bounded in-memory cache with least-recently-used eviction.

    The in-memory layer of the evaluation engine (candidate verdict
    memoisation) uses this so long sweeps cannot grow without limit.
    """

    def __init__(self, maxsize: int = 4096):
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._data: OrderedDict[K, V] = OrderedDict()

    def get(self, key: K, default: V | None = None) -> V | None:
        try:
            self._data.move_to_end(key)
        except KeyError:
            return default
        return self._data[key]

    def put(self, key: K, value: V) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)

    def clear(self) -> None:
        self._data.clear()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: K) -> bool:
        return key in self._data


class ManifestCache:
    """Manifest-indexed store of per-slot results.

    Subclasses set the class attributes below and implement
    :meth:`_encode` / :meth:`_decode`; everything else — manifest
    validation, stale-file pruning, atomic writes, hit/miss accounting —
    is shared.
    """

    #: Format version written into (and required of) the manifest.
    version: int = 1
    #: Subdirectory of ``root`` holding the entry files.
    subdir: str = "entries"
    #: Entry file name pieces: ``<prefix><slot>-<key8><suffix>``.
    file_prefix: str = "entry-"
    file_suffix: str = ".json"
    #: Manifest key for the slot index (kept as ``"shards"`` by the
    #: augmentation cache for backward compatibility).
    entries_field: str = "entries"

    def __init__(self, root: str, fingerprint: str):
        self.root = root
        self.fingerprint = fingerprint
        self.hits = 0
        self.misses = 0
        self._manifest_path = os.path.join(root, "manifest.json")
        self._entry_dir = os.path.join(root, self.subdir)
        self._entries: dict[str, dict] = {}
        self._load_manifest()

    # -- serialisation hooks ----------------------------------------------

    def _encode(self, payload) -> str:
        raise NotImplementedError

    def _decode(self, text: str):
        raise NotImplementedError

    def _entry_meta(self, payload) -> dict:
        """Extra manifest metadata recorded alongside an entry."""
        return {}

    # -- manifest ---------------------------------------------------------

    def _load_manifest(self) -> None:
        try:
            with open(self._manifest_path, encoding="utf-8") as handle:
                manifest = json.load(handle)
        except (OSError, ValueError):
            return
        if (manifest.get("version") != self.version
                or manifest.get("fingerprint") != self.fingerprint):
            self._clear_entry_files()   # stale config/format: start clean
            return
        self._entries = manifest.get(self.entries_field, {})

    def _clear_entry_files(self) -> None:
        """Drop orphaned entry files so stale configs don't pile up."""
        try:
            names = os.listdir(self._entry_dir)
        except OSError:
            return
        for name in names:
            if (name.startswith(self.file_prefix)
                    and name.endswith(self.file_suffix)):
                try:
                    os.unlink(os.path.join(self._entry_dir, name))
                except OSError:
                    pass

    def _entry_path(self, slot: str, key: str) -> str:
        return os.path.join(
            self._entry_dir,
            f"{self.file_prefix}{slot}-{key[:8]}{self.file_suffix}")

    # -- lookup / store ---------------------------------------------------

    def lookup(self, slot, key: str):
        """Cached payload for ``slot``, or ``None``.

        Updates the hit/miss counters that :meth:`flush` writes into the
        manifest — a warm re-run is verifiable as ``misses == 0``.
        """
        entry = self._entries.get(str(slot))
        if entry is None or entry.get("key") != key:
            self.misses += 1
            return None
        path = os.path.join(self.root, entry["file"])
        try:
            with open(path, encoding="utf-8") as handle:
                payload = self._decode(handle.read())
        except (OSError, ValueError, KeyError):
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def store(self, slot, key: str, payload) -> None:
        """Persist one slot's payload and index it in the manifest."""
        path = self._entry_path(str(slot), key)
        atomic_write_text(path, self._encode(payload))
        relpath = os.path.relpath(path, self.root)
        old = self._entries.get(str(slot))
        if (old is not None and old.get("key") != key
                and old.get("file") != relpath):
            try:
                os.unlink(os.path.join(self.root, old["file"]))
            except OSError:
                pass
        entry = {"key": key, "file": relpath}
        entry.update(self._entry_meta(payload))
        self._entries[str(slot)] = entry

    def flush(self) -> None:
        """Atomically write the manifest, including last-run counters."""
        manifest = {
            "version": self.version,
            "fingerprint": self.fingerprint,
            self.entries_field: dict(sorted(self._entries.items())),
            "last_run": {"hits": self.hits, "misses": self.misses},
        }
        atomic_write_text(self._manifest_path,
                          json.dumps(manifest, indent=2, sort_keys=True)
                          + "\n")


def shard_key(fingerprint: str, digests: list[str]) -> str:
    """Cache key for one shard: config fingerprint + member contents."""
    hasher = hashlib.sha256(fingerprint.encode("utf-8"))
    for digest in sorted(digests):
        hasher.update(digest.encode("utf-8"))
    return hasher.hexdigest()


class ResultCache(ManifestCache):
    """Per-shard augmentation results (``digest -> records`` JSONL).

    Layout under ``cache_dir``::

        manifest.json                  index + config fingerprint + counters
        shards/shard-<idx>-<key8>.jsonl   one line per source file

    Each shard line is ``{"file": <content digest>, "records": [...]}``
    with records in the lossless :meth:`repro.core.Record.to_dict` form.
    """

    version = CACHE_FORMAT_VERSION
    subdir = "shards"
    file_prefix = "shard-"
    file_suffix = ".jsonl"
    entries_field = "shards"

    def _entry_path(self, slot: str, key: str) -> str:
        return os.path.join(self._entry_dir,
                            f"shard-{int(slot):04d}-{key[:8]}.jsonl")

    def _encode(self, payload: dict[str, list[Record]]) -> str:
        lines = [json.dumps({"file": digest,
                             "records": [r.to_dict() for r in records]},
                            ensure_ascii=False, sort_keys=True)
                 for digest, records in sorted(payload.items())]
        return "\n".join(lines) + ("\n" if lines else "")

    def _decode(self, text: str) -> dict[str, list[Record]]:
        results: dict[str, list[Record]] = {}
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            blob = json.loads(line)
            results[blob["file"]] = [Record.from_dict(r)
                                     for r in blob["records"]]
        return results

    def _entry_meta(self, payload: dict[str, list[Record]]) -> dict:
        return {"files": sorted(payload)}
