"""Content-addressed shard result cache.

Layout under ``cache_dir``::

    manifest.json                  index + config fingerprint + counters
    shards/shard-<idx>-<key8>.jsonl   one line per source file

Each shard line is ``{"file": <content digest>, "records": [...]}`` with
records in the lossless :meth:`repro.core.Record.to_dict` form.

Invalidation rules (see ROADMAP "repro.scale architecture"):

* the **cache key** of a shard is a hash of the pipeline-config
  fingerprint plus the sorted content digests of its members — touching
  one file changes exactly that file's shard key;
* a manifest written under a different config fingerprint or format
  version is discarded wholesale;
* shard files are written atomically, so a crashed writer leaves either
  the old entry or the new one, never a torn file.
"""

from __future__ import annotations

import hashlib
import json
import os

from ..core.records import Record, atomic_write_text

#: Bump when the shard line format changes; invalidates old caches.
CACHE_FORMAT_VERSION = 1


def shard_key(fingerprint: str, digests: list[str]) -> str:
    """Cache key for one shard: config fingerprint + member contents."""
    hasher = hashlib.sha256(fingerprint.encode("utf-8"))
    for digest in sorted(digests):
        hasher.update(digest.encode("utf-8"))
    return hasher.hexdigest()


class ResultCache:
    """Manifest-indexed store of per-shard augmentation results."""

    def __init__(self, root: str, fingerprint: str):
        self.root = root
        self.fingerprint = fingerprint
        self.hits = 0
        self.misses = 0
        self._manifest_path = os.path.join(root, "manifest.json")
        self._shard_dir = os.path.join(root, "shards")
        self._shards: dict[str, dict] = {}
        self._load_manifest()

    def _load_manifest(self) -> None:
        try:
            with open(self._manifest_path, encoding="utf-8") as handle:
                manifest = json.load(handle)
        except (OSError, ValueError):
            return
        if (manifest.get("version") != CACHE_FORMAT_VERSION
                or manifest.get("fingerprint") != self.fingerprint):
            self._clear_shard_files()   # stale config/format: start clean
            return
        self._shards = manifest.get("shards", {})

    def _clear_shard_files(self) -> None:
        """Drop orphaned shard files so stale configs don't pile up."""
        try:
            names = os.listdir(self._shard_dir)
        except OSError:
            return
        for name in names:
            if name.startswith("shard-") and name.endswith(".jsonl"):
                try:
                    os.unlink(os.path.join(self._shard_dir, name))
                except OSError:
                    pass

    def _shard_path(self, shard_index: int, key: str) -> str:
        return os.path.join(self._shard_dir,
                            f"shard-{shard_index:04d}-{key[:8]}.jsonl")

    def lookup(self, shard_index: int,
               key: str) -> dict[str, list[Record]] | None:
        """Cached ``digest -> records`` for the shard, or ``None``.

        Updates the hit/miss counters that :meth:`flush` writes into the
        manifest — a warm re-run is verifiable as ``misses == 0``.
        """
        entry = self._shards.get(str(shard_index))
        if entry is None or entry.get("key") != key:
            self.misses += 1
            return None
        path = os.path.join(self.root, entry["file"])
        try:
            results: dict[str, list[Record]] = {}
            with open(path, encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    blob = json.loads(line)
                    results[blob["file"]] = [Record.from_dict(r)
                                             for r in blob["records"]]
        except (OSError, ValueError, KeyError):
            self.misses += 1
            return None
        self.hits += 1
        return results

    def store(self, shard_index: int, key: str,
              results: dict[str, list[Record]]) -> None:
        """Persist one shard's results and index them in the manifest."""
        path = self._shard_path(shard_index, key)
        lines = [json.dumps({"file": digest,
                             "records": [r.to_dict() for r in records]},
                            ensure_ascii=False, sort_keys=True)
                 for digest, records in sorted(results.items())]
        atomic_write_text(path, "\n".join(lines) + ("\n" if lines else ""))
        relpath = os.path.relpath(path, self.root)
        old = self._shards.get(str(shard_index))
        if (old is not None and old.get("key") != key
                and old.get("file") != relpath):
            try:
                os.unlink(os.path.join(self.root, old["file"]))
            except OSError:
                pass
        self._shards[str(shard_index)] = {
            "key": key,
            "files": sorted(results),
            "file": relpath,
        }

    def flush(self) -> None:
        """Atomically write the manifest, including last-run counters."""
        manifest = {
            "version": CACHE_FORMAT_VERSION,
            "fingerprint": self.fingerprint,
            "shards": dict(sorted(self._shards.items())),
            "last_run": {"hits": self.hits, "misses": self.misses},
        }
        atomic_write_text(self._manifest_path,
                          json.dumps(manifest, indent=2, sort_keys=True)
                          + "\n")
