"""Command-line interface: ``python -m repro <command>``.

Commands mirror the tool chain a user drives interactively:

* ``describe``  — AST → natural language for a Verilog file (Fig 5)
* ``check``     — yosys-style lint
* ``simulate``  — run a (testbench-containing) file, optional VCD out
* ``synth``     — gate-level synthesis report
* ``flow``      — full RTL-to-GDS flow + PPA report
* ``augment``   — run the augmentation pipeline over Verilog files
* ``augment-dist`` — sharded/parallel/cache-aware augmentation
  over files or directories (``--jobs``, ``--cache-dir``)
* ``agent``     — run the Fig-1 agent loop on a named benchmark problem
* ``train``     — checkpointed finetuning over a corpus
  (``repro.train``): loads through the shard cache, resumes from
  ``--checkpoint-dir``, writes a trained-model artefact (``--out``)
* ``evaluate``  — run one benchmark suite on the shared evaluation
  engine (``--suite``, ``--models``, ``--jobs``, ``--cache-dir``,
  ``--k``, ``--sim-backend compiled|interp``, ``--artifact`` to score
  a trained model)
* ``tables``    — regenerate the paper's tables/figures (``--only``
  computes just the requested ones; ``--jobs``/``--cache-dir`` reach
  Tables 3–5 through the engine)
* ``serve``     — run the crash-safe job daemon (``repro.serve``):
  augmentation, evaluation, simulation and experiments as journaled,
  resumable jobs behind a JSON HTTP API; ``--gateway`` swaps the
  threaded front end for the asyncio multi-tenant gateway (tenant
  rate limits/quotas via ``X-Repro-Tenant``, SSE job streams,
  429 + ``Retry-After`` backpressure — see ``repro.serve.gateway``)
* ``submit`` / ``status`` / ``result`` / ``cancel`` — client commands
  talking to a running daemon (``--url``, ``--tenant``)
* ``pipeline``  — submit augment → train → evaluate to the daemon as
  one dependency DAG; the evaluate stage scores the freshly trained
  model
"""

from __future__ import annotations

import argparse
import json
import os
import sys


def _read(path: str) -> str:
    with open(path, encoding="utf-8") as handle:
        return handle.read()


def cmd_describe(args: argparse.Namespace) -> int:
    from .nl import describe_source
    print(describe_source(_read(args.file)).annotated())
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    from .checker import check_source
    result = check_source(_read(args.file), args.file)
    print(result.report())
    return 0 if result.ok else 1


def cmd_simulate(args: argparse.Namespace) -> int:
    from .sim import run_simulation
    result = run_simulation(_read(args.file), top=args.top,
                            trace=args.vcd is not None,
                            backend=args.sim_backend)
    if not result.ok:
        print(result.error, file=sys.stderr)
        return 1
    print(result.output)
    print(f"-- finished={result.finished} time={result.time}")
    if args.vcd and result.vcd:
        with open(args.vcd, "w", encoding="utf-8") as handle:
            handle.write(result.vcd)
        print(f"-- wrote {args.vcd}")
    return 0


def cmd_synth(args: argparse.Namespace) -> int:
    from .eda import SynthesisError, synthesize
    try:
        result = synthesize(_read(args.file), top=args.top)
    except SynthesisError as exc:
        print(f"synthesis failed: {exc}", file=sys.stderr)
        return 1
    print(f"module:        {result.netlist.module}")
    print(f"cells:         {result.num_cells}")
    for kind, count in sorted(result.cell_counts.items()):
        print(f"  {kind:<8} {count}")
    print(f"area:          {result.area_um2:.1f} um^2")
    print(f"critical path: {result.critical_path_ns:.3f} ns "
          f"(fmax {result.fmax_mhz:.1f} MHz)")
    if args.netlist:
        from .eda.netlist_writer import netlist_to_verilog
        with open(args.netlist, "w", encoding="utf-8") as handle:
            handle.write(netlist_to_verilog(result.netlist))
        print(f"-- wrote {args.netlist}")
    return 0


def cmd_flow(args: argparse.Namespace) -> int:
    from .eda import Flow, FlowConstraints
    constraints = FlowConstraints(clock_period_ns=args.clock)
    result = Flow().run(_read(args.file), args.top, constraints)
    print(result.summary())
    return 0 if result.ok else 1


def _augment_config(args: argparse.Namespace):
    from .core import PipelineConfig
    if args.completion_only:
        return PipelineConfig.completion_only()
    return PipelineConfig(seed=args.seed)


def _run_augment(args: argparse.Namespace, paths: list[str]) -> int:
    """Shared driver for ``augment`` and ``augment-dist``.

    Both stream files through :mod:`repro.scale` — sources are read
    per-shard inside the workers, never held in memory as one corpus —
    and merge in canonical (content-digest) order, so serial and
    distributed runs write byte-identical JSONL.
    """
    from .core import dataset_stats, render_table2
    from .scale import augment_distributed
    from .scale.store import DEFAULT_NUM_SHARDS
    report = augment_distributed(
        paths, config=_augment_config(args), jobs=args.jobs,
        cache_dir=args.cache_dir,
        num_shards=(args.shards if args.shards is not None
                    else DEFAULT_NUM_SHARDS))
    print(render_table2(dataset_stats(report.dataset)))
    print(f"-- {report.summary()}")
    if args.out:
        report.dataset.save(args.out)
        print(f"-- wrote {len(report.dataset)} records to {args.out}")
    return 0


def cmd_augment(args: argparse.Namespace) -> int:
    return _run_augment(args, list(args.files))


def cmd_augment_dist(args: argparse.Namespace) -> int:
    return _run_augment(args, list(args.paths))


def cmd_agent(args: argparse.Namespace) -> int:
    from .agent import ChipAgent
    from .bench import rtllm_suite, thakur_suite
    problems = {p.name: p for p in list(thakur_suite())
                + list(rtllm_suite())}
    if args.problem not in problems:
        print(f"unknown problem '{args.problem}'; choose from: "
              f"{', '.join(sorted(problems))}", file=sys.stderr)
        return 2
    agent = ChipAgent(args.model, run_flow=args.gds)
    result = agent.build(problems[args.problem])
    print(result.transcript)
    print(f"-- {'PASSED' if result.passed else 'FAILED'} in "
          f"{result.rounds} round(s)")
    return 0 if result.passed else 1


#: Train knobs shared by `train`, `submit train` and `pipeline`
#: (None = not given; the spec normaliser / TrainConfig defaults fill
#: the gaps).
_TRAIN_KNOBS = ("epochs", "batch_size", "micro_batch", "seq_len", "lr",
                "train_seed", "vocab_size", "d_model", "n_heads",
                "n_layers", "d_ff", "max_records", "checkpoint_every")


def _train_knobs(args: argparse.Namespace) -> dict:
    """The train knobs the user actually set (``--max-records 0`` means
    unlimited)."""
    knobs = {name: getattr(args, name) for name in _TRAIN_KNOBS
             if getattr(args, name) is not None}
    if knobs.get("max_records") == 0:
        knobs["max_records"] = None
    return knobs


def _pool_spec(args: argparse.Namespace) -> dict:
    """Operational pool knobs for submitted train specs."""
    spec = {}
    if getattr(args, "pool", None):
        spec["pool"] = args.pool
    if getattr(args, "pool_jobs", None):
        spec["pool_jobs"] = args.pool_jobs
    return spec


def cmd_train(args: argparse.Namespace) -> int:
    from .scale.store import DEFAULT_NUM_SHARDS
    from .train import (TrainConfig, build_artifact, corpus_dataset,
                        load_tuned, train_run)
    knobs = _train_knobs(args)
    jobs, pool = args.jobs, args.pool
    tuned = None if args.no_tuned else load_tuned(args.tuned_config)
    if tuned is not None:
        # The machine-local `repro tune` winner fills in whatever the
        # user left unset; explicit flags always win.
        if jobs is None:
            jobs = tuned["jobs"]
        if pool is None:
            pool = tuned.get("pool")
        for knob in ("micro_batch", "checkpoint_every"):
            if (getattr(args, knob) is None
                    and isinstance(tuned.get(knob), int)):
                knobs[knob] = tuned[knob]
        print(f"-- tuned config: jobs={jobs} pool={pool or 'serial'} "
              f"(override with --jobs/--pool, skip with --no-tuned)")
    jobs = jobs if jobs is not None else 1
    config = _augment_config(args)
    dataset, scale_report = corpus_dataset(
        list(args.paths), config=config, cache_dir=args.cache_dir,
        jobs=jobs,
        num_shards=(args.shards if args.shards is not None
                    else DEFAULT_NUM_SHARDS))
    seed = knobs.pop("train_seed", None)
    train_config = TrainConfig(**knobs)
    if seed is not None:
        train_config.seed = seed
    report = train_run(dataset, train_config, jobs=jobs,
                       use_threads=pool == "threads",
                       checkpoint_dir=args.checkpoint_dir)
    print(f"-- corpus: {scale_report.summary()}")
    print(f"-- train: {report.summary()}")
    if args.out:
        artifact = build_artifact(args.register_as, report, dataset)
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(artifact, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"-- wrote artefact to {args.out}")
    if args.report_out:
        blob = {"steps": report.steps, "records": report.records,
                "losses": report.losses,
                "val_losses": report.val_losses,
                "final_loss": report.final_loss,
                "weights_sha256": report.weights_sha256,
                "dataset_digest": report.dataset_digest,
                "trained_tokens": report.trained_tokens}
        with open(args.report_out, "w", encoding="utf-8") as handle:
            json.dump(blob, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"-- wrote report to {args.report_out}")
    return 0


def cmd_tune(args: argparse.Namespace) -> int:
    """Profile the (jobs, pool, micro_batch, cadence) grid and persist
    the machine-local winner for `repro train`/benchmarks to pick up."""
    from .train import default_grid, save_tuned, tune_corpus
    from .train.tune import machine_cpus
    grid = default_grid(max_jobs=args.max_jobs)
    print(f"-- tuning over {len(grid)} candidate(s) on "
          f"{machine_cpus()} cpu(s); slices run as service jobs")
    try:
        report = tune_corpus(
            [os.path.abspath(p) for p in args.paths],
            store_dir=args.store_dir, grid=grid,
            epochs=args.epochs, batch_size=args.batch_size,
            max_records=args.max_records, seed=args.seed,
            log=lambda line: print(f"   {line}"))
    except RuntimeError as exc:
        print(f"tune failed: {exc}", file=sys.stderr)
        return 1
    path = save_tuned(report, args.out)
    print(f"-- wrote tuned config to {path}")
    return 0


def cmd_pipeline(args: argparse.Namespace) -> int:
    """Submit augment → train → evaluate as one DAG and (optionally)
    wait for the evaluation of the freshly trained model.

    The DAG is the built-in :func:`repro.flow.pipeline_flow` spec,
    submitted whole through ``/api/flow`` — one journal group commit
    instead of three submits.
    """
    from .flow import pipeline_flow
    from .serve import ServeError
    client = _client(args)
    flow = pipeline_flow(
        paths=[os.path.abspath(p) for p in args.paths],
        seed=args.seed, completion_only=args.completion_only,
        train_knobs=_train_knobs(args), pool=_pool_spec(args),
        register_as=args.register_as, suite=args.suite,
        models=args.models.split(",") if args.models else None,
        samples=args.samples, k=args.k,
        levels=args.levels.split(",") if args.levels else None,
        sim_backend=args.sim_backend, priority=args.priority)
    try:
        submitted = client.submit_flow(flow)
    except ServeError as exc:
        print(f"pipeline submit failed: {exc}", file=sys.stderr)
        return 1
    nodes = submitted["nodes"]
    stages = [(stage, nodes[stage])
              for stage in ("augment", "train", "evaluate")]
    train = nodes["train"]
    evaluate = nodes["evaluate"]
    for stage, job in stages:
        print(f"-- submitted {job['id']} ({stage})")
    if args.no_wait:
        return 0
    try:
        jobs = client.wait([job["id"] for _, job in stages],
                           timeout=args.timeout)
    except TimeoutError as exc:
        print(f"pipeline timed out: {exc}", file=sys.stderr)
        return 1
    failed = [job for job in jobs.values() if job["state"] != "done"]
    for job in failed:
        print(f"-- {job['id']} {job['state']}: "
              f"{job.get('error') or ''}", file=sys.stderr)
    if failed:
        return 1
    train_blob = client.result(train["id"])
    print(f"-- trained '{train_blob['register_as']}': "
          f"{train_blob['steps']} step(s), final loss "
          f"{train_blob['final_loss']:.4f}, weights "
          f"{train_blob['weights_sha256'][:12]}")
    eval_blob = client.result(evaluate["id"])
    print(eval_blob["rendered"])
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(eval_blob["rendered"] + "\n")
        print(f"-- wrote report to {args.out}")
    return 0


def cmd_dag(args: argparse.Namespace) -> int:
    """Validate / run / submit a user-defined DAG spec file.

    ``--check`` prints the expanded, topologically ordered graph;
    ``--direct`` executes it serially in process (the determinism
    reference); otherwise the whole graph goes to the daemon as one
    ``/api/flow`` group commit.
    """
    import tempfile

    from .flow import FlowError, run_flow, run_flow_direct, validate_flow
    from .serve import ServeError, SpecError
    with open(args.spec, encoding="utf-8") as handle:
        blob = json.load(handle)
    try:
        nodes = validate_flow(blob)
    except SpecError as exc:
        print(f"invalid flow: {exc}", file=sys.stderr)
        return 1
    if args.check:
        for node in nodes:
            deps = (" after " + ", ".join(node.after)
                    if node.after else "")
            print(f"-- {node.name}: {node.kind}{deps}")
        print(f"-- {len(nodes)} node(s), spec is valid")
        return 0
    try:
        if args.direct:
            workdir = args.workdir or tempfile.mkdtemp(
                prefix="repro-dag-")
            results = run_flow_direct(blob, workdir,
                                      engine_jobs=args.jobs)
        else:
            results = run_flow(_client(args), blob,
                               timeout=args.timeout)
    except (FlowError, ServeError, TimeoutError) as exc:
        print(f"flow failed: {exc}", file=sys.stderr)
        return 1
    for node in nodes:
        print(f"-- {node.name}: done ({node.kind})")
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(results, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"-- wrote results to {args.out}")
    return 0


def cmd_scenarios(args: argparse.Namespace) -> int:
    """List or run registered scenarios; non-zero exit on violations."""
    from .scenarios import run_scenarios, select_scenarios
    if args.scenarios_cmd == "list":
        for scenario in select_scenarios(tag=args.tag):
            tags = ",".join(scenario.tags)
            print(f"{scenario.name:24} {scenario.family:6} [{tags}] "
                  f"{scenario.description}")
        return 0
    names = args.name or None
    if not (names or args.tag or args.all):
        print("pick one of --all, --name or --tag", file=sys.stderr)
        return 2
    report = run_scenarios(names=names, tag=args.tag, root=args.root,
                           via=args.via, jobs=args.jobs)
    print(report.render())
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=2,
                      sort_keys=True)
            handle.write("\n")
        print(f"-- wrote scenario report to {args.out}")
    return 0 if report.ok else 1


def _eval_engine(args: argparse.Namespace):
    import os

    from .eval import EvalEngine
    from .sim import configure_design_cache
    if args.cache_dir:
        # Attach the persistent compile-verdict layer next to the cell
        # cache; forked workers inherit it, so they skip doomed compile
        # attempts on warm re-runs.
        configure_design_cache(
            root=os.path.join(args.cache_dir, "sim-designs"))
    return EvalEngine(jobs=args.jobs, cache_dir=args.cache_dir)


def cmd_tables(args: argparse.Namespace) -> int:
    from .experiments import EXPERIMENTS, run_selected
    names = args.only.split(",") if args.only else None
    # Validate ids up front so execution errors keep their tracebacks.
    unknown = [n for n in names or () if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s) {', '.join(unknown)}; "
              f"available: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2
    results = run_selected(names, quick=not args.full,
                           engine=_eval_engine(args))
    for name, text in results.items():
        print(f"\n{'=' * 72}\n{name.upper()}\n{'=' * 72}")
        print(text)
    return 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    from .eval import run_suite
    engine = _eval_engine(args)
    artifacts = None
    if args.artifact:
        artifacts = [json.loads(_read(path)) for path in args.artifact]
    result = run_suite(
        args.suite,
        models=args.models.split(",") if args.models else None,
        samples=args.samples, k=args.k,
        levels=tuple(args.levels.split(",")) if args.levels else None,
        seed=args.seed, engine=engine, sim_backend=args.sim_backend,
        artifacts=artifacts)
    print(result.rendered)
    print(f"-- {engine.stats.summary()}")
    # The engine aggregates each worker's thread-local counters back
    # through its result stream, so these totals are exact for any
    # --jobs setting (cached cells simply ran no simulations).
    stats = engine.sim_stats
    if stats.compiled_runs or stats.interp_runs or stats.fallbacks:
        print(f"-- {stats.summary()}")
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(result.rendered + "\n")
        print(f"-- wrote report to {args.out}")
    return 0


def cmd_infer(args: argparse.Namespace) -> int:
    """Decode completions from a trained-model artefact, locally (the
    daemon-free twin of ``repro submit infer``: same seed derivation,
    same result blob)."""
    from .infer import sample_tokens, shared_host
    from .train.data import stable_seed
    artifact = json.loads(_read(args.artifact))
    weights = (artifact.get("weights")
               if isinstance(artifact, dict) else None)
    if not isinstance(weights, dict):
        print(f"{args.artifact} carries no weights bundle (written by "
              "a pre-inference `repro train`? retrain to decode it)",
              file=sys.stderr)
        return 2
    loaded = shared_host().load_bundle(weights)
    tokenizer = loaded.tokenizer
    prompts = list(args.prompt)
    rows = [[tokenizer.bos_id] + tokenizer.encode(p) for p in prompts]
    seeds = [stable_seed("infer", loaded.digest, args.seed, index,
                         prompt)
             for index, prompt in enumerate(prompts)]
    outs = sample_tokens(loaded.model, rows,
                         max_tokens=args.max_tokens,
                         temperature=args.temperature, seeds=seeds,
                         stop_token=tokenizer.eos_id)
    completions = []
    for index, (prompt, row) in enumerate(zip(prompts, rows)):
        generated = outs[index][len(row):][:args.max_tokens]
        completions.append({"prompt": prompt,
                            "text": tokenizer.decode(generated),
                            "tokens": len(generated)})
    for entry in completions:
        print(f">>> {entry['prompt']}")
        print(entry["text"] or "(empty completion)")
    print(f"-- decoded {len(completions)} completion(s) from weights "
          f"{loaded.digest[:12]}")
    if args.out:
        blob = {"kind": "infer", "model": artifact.get("name"),
                "weights_sha256": loaded.digest,
                "max_tokens": args.max_tokens,
                "temperature": args.temperature, "seed": args.seed,
                "completions": completions}
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(blob, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"-- wrote completions to {args.out}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from .serve import Daemon, make_server
    from .serve import JOB_KINDS
    budgets = {}
    for item in args.budget or ():
        kind, _, count = item.partition("=")
        if kind not in JOB_KINDS or not count.isdigit():
            print(f"bad --budget '{item}' (want kind=N with kind in "
                  f"{', '.join(JOB_KINDS)}; N=0 pauses the kind)",
                  file=sys.stderr)
            return 2
        budgets[kind] = int(count)
    daemon = Daemon(args.store, budgets=budgets or None,
                    engine_jobs=args.jobs, workers=args.workers,
                    batch_limit=args.batch_limit)
    if args.gateway:
        return _serve_gateway(args, daemon)
    server = make_server(daemon, host=args.host, port=args.port)
    host, port = server.server_address[:2]
    daemon.start()
    if daemon.store.recovered:
        print(f"-- recovered {len(daemon.store.recovered)} "
              f"interrupted job(s): "
              f"{', '.join(daemon.store.recovered)}", flush=True)
    print(f"-- serving on http://{host}:{port} "
          f"(store {args.store})", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        daemon.stop()
        print("-- daemon stopped (store compacted)")
    return 0


def _parse_tenants(items) -> dict:
    """``name=rate[:burst[:max_active[:boost]]]`` → policy map.

    Empty fields keep the default (e.g. ``paid=::64:10`` sets only the
    quota and priority boost).
    """
    from .serve import TenantPolicy
    tenants = {}
    for item in items or ():
        name, _, knobs = item.partition("=")
        if not name:
            raise ValueError(f"bad --tenant '{item}'")
        fields = (knobs.split(":") + ["", "", "", ""])[:4]
        rate, burst, max_active, boost = fields
        tenants[name] = TenantPolicy(
            name=name,
            rate=float(rate) if rate else None,
            burst=int(burst) if burst else 64,
            max_active=int(max_active) if max_active else None,
            priority_boost=int(boost) if boost else 0)
    return tenants


def _serve_gateway(args: argparse.Namespace, daemon) -> int:
    """Foreground asyncio gateway in front of ``daemon``."""
    import asyncio

    from .serve import Gateway, GatewayConfig
    try:
        tenants = _parse_tenants(args.tenant)
    except ValueError as exc:
        print(f"{exc} (want name=rate[:burst[:max_active[:boost]]])",
              file=sys.stderr)
        return 2
    config = GatewayConfig(
        max_queue_depth=args.max_queue_depth, tenants=tenants,
        allow_unknown_tenants=not args.strict_tenants)

    async def _main() -> None:
        gateway = Gateway(daemon, host=args.host, port=args.port,
                          config=config)
        await gateway.start()
        if daemon.store.recovered:
            print(f"-- recovered {len(daemon.store.recovered)} "
                  f"interrupted job(s): "
                  f"{', '.join(daemon.store.recovered)}", flush=True)
        print(f"-- serving on http://{args.host}:{gateway.port} "
              f"(store {args.store})", flush=True)
        try:
            await gateway.serve_forever()
        finally:
            await gateway.close()

    daemon.start()
    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
    finally:
        daemon.stop()
        print("-- daemon stopped (store compacted)")
    return 0


def _client(args: argparse.Namespace):
    from .serve import ServeClient
    return ServeClient(args.url, tenant=getattr(args, "tenant", None))


def cmd_submit(args: argparse.Namespace) -> int:
    from .serve import ServeError
    after = None
    if args.job_kind == "augment":
        spec = {"paths": [os.path.abspath(p) for p in args.paths],
                "seed": args.seed,
                "completion_only": args.completion_only}
    elif args.job_kind == "train":
        spec = {"paths": [os.path.abspath(p) for p in args.paths],
                "seed": args.seed,
                "completion_only": args.completion_only,
                "register_as": args.register_as}
        spec.update(_train_knobs(args))
        spec.update(_pool_spec(args))
    elif args.job_kind == "evaluate":
        spec = {"suite": args.suite,
                "models": args.models.split(",") if args.models
                else None,
                "samples": args.samples, "k": args.k,
                "levels": args.levels.split(",") if args.levels
                else None,
                "seed": args.seed, "sim_backend": args.sim_backend}
    elif args.job_kind == "infer":
        spec = {"prompts": list(args.prompt),
                "trained": {"name": args.trained_name,
                            "job": args.train_job},
                "max_tokens": args.max_tokens,
                "temperature": args.temperature, "seed": args.seed}
        # Gate on the train job so the weights exist when we decode
        # (a done dependency resolves immediately).
        after = [args.train_job]
    elif args.job_kind == "simulate":
        spec = {"source": _read(args.file), "top": args.top,
                "backend": args.sim_backend, "vcd": args.vcd}
    elif args.job_kind == "probe":
        try:
            payload = json.loads(args.payload) if args.payload else ""
        except ValueError:
            payload = args.payload      # plain string payload
        spec = {"payload": payload, "sleep_ms": args.sleep_ms}
    else:   # experiment
        spec = {"name": args.name, "quick": not args.full}
    try:
        job = _client(args).submit(args.job_kind, spec,
                                   priority=args.priority, after=after)
    except ServeError as exc:
        print(f"submit failed: {exc}", file=sys.stderr)
        return 1
    print(f"-- submitted {job['id']} ({job['kind']}, "
          f"priority {job['priority']})")
    print(job["id"])
    return 0


def cmd_status(args: argparse.Namespace) -> int:
    from .serve import ServeError
    client = _client(args)
    try:
        if args.job:
            job = client.status(args.job)
            print(json.dumps(job, indent=2, sort_keys=True))
            return 0
        jobs = client.jobs()
        health = client.health()
    except ServeError as exc:
        print(f"status failed: {exc}", file=sys.stderr)
        return 1
    for job in jobs:
        line = (f"{job['id']}  {job['kind']:<10} "
                f"{job['state']:<9} prio={job['priority']}")
        if job.get("error"):
            line += f"  error: {job['error']}"
        print(line)
    counts = health["jobs"]
    summary = ", ".join(f"{state}={count}"
                        for state, count in sorted(counts.items()))
    print(f"-- {len(jobs)} job(s): {summary or 'none'}")
    print(f"-- queues: {health['queue_depths'] or {}} "
          f"in-flight: {health['in_flight'] or {}}")
    print(f"-- {health['sim_backend']['summary']}")
    return 0


def cmd_result(args: argparse.Namespace) -> int:
    from .serve import ServeError
    try:
        blob = _client(args).result(args.job)
    except ServeError as exc:
        print(f"result not available: {exc}", file=sys.stderr)
        return 1
    if args.json or "rendered" not in blob:
        text = json.dumps(blob, indent=2, sort_keys=True)
    else:
        text = blob["rendered"]
    print(text)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"-- wrote {args.out}")
    return 0


def cmd_cancel(args: argparse.Namespace) -> int:
    from .serve import ServeError
    try:
        job = _client(args).cancel(args.job)
    except ServeError as exc:
        print(f"cancel failed: {exc}", file=sys.stderr)
        return 1
    print(f"-- cancelled {job['id']}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ChipGPT-FT reproduction tool chain")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("describe", help="Verilog → natural language")
    p.add_argument("file")
    p.set_defaults(fn=cmd_describe)

    p = sub.add_parser("check", help="yosys-style lint")
    p.add_argument("file")
    p.set_defaults(fn=cmd_check)

    p = sub.add_parser("simulate", help="run a testbench")
    p.add_argument("file")
    p.add_argument("--top")
    p.add_argument("--vcd", help="write VCD waveform to this path")
    p.add_argument("--sim-backend", choices=("compiled", "codegen", "interp"),
                   default=None,
                   help="simulator backend (default: compiled, with "
                        "automatic fallback to the interpreter; "
                        "'codegen' emits an importable Python module "
                        "per design and caches its source on disk, so "
                        "warm pool workers never re-lower)")
    p.set_defaults(fn=cmd_simulate)

    p = sub.add_parser("synth", help="gate-level synthesis report")
    p.add_argument("file")
    p.add_argument("--top")
    p.add_argument("--netlist", help="write structural Verilog netlist")
    p.set_defaults(fn=cmd_synth)

    p = sub.add_parser("flow", help="RTL-to-GDS flow + PPA")
    p.add_argument("file")
    p.add_argument("--top")
    p.add_argument("--clock", type=float, default=10.0,
                   help="clock period in ns")
    p.set_defaults(fn=cmd_flow)

    def add_augment_options(p: argparse.ArgumentParser) -> None:
        p.add_argument("--out", help="write records as JSONL")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--completion-only", action="store_true",
                       help="ablation baseline (general aug)")
        p.add_argument("--jobs", type=int, default=1,
                       help="worker processes (default 1 = serial)")
        p.add_argument("--cache-dir",
                       help="shard result cache; re-runs only recompute "
                            "dirty shards")
        p.add_argument("--shards", type=int, default=None,
                       help="shard count for the corpus store")

    p = sub.add_parser("augment", help="run the augmentation pipeline")
    p.add_argument("files", nargs="+")
    add_augment_options(p)
    p.set_defaults(fn=cmd_augment)

    p = sub.add_parser("augment-dist",
                       help="sharded/parallel/incremental augmentation "
                            "over files or directories")
    p.add_argument("paths", nargs="+",
                   help="Verilog files and/or directories to walk")
    add_augment_options(p)
    p.set_defaults(fn=cmd_augment_dist)

    def add_train_options(p: argparse.ArgumentParser) -> None:
        p.add_argument("--epochs", type=int, default=None)
        p.add_argument("--batch-size", type=int, default=None)
        p.add_argument("--micro-batch", type=int, default=None,
                       help="gradient-accumulation micro-batch size")
        p.add_argument("--seq-len", type=int, default=None)
        p.add_argument("--lr", type=float, default=None)
        p.add_argument("--train-seed", type=int, default=None,
                       help="training seed (schedule + init); distinct "
                            "from the augmentation --seed")
        p.add_argument("--vocab-size", type=int, default=None)
        p.add_argument("--d-model", type=int, default=None)
        p.add_argument("--n-heads", type=int, default=None)
        p.add_argument("--n-layers", type=int, default=None)
        p.add_argument("--d-ff", type=int, default=None)
        p.add_argument("--max-records", type=int, default=None,
                       help="canonical-order dataset cap (0 = no cap)")
        p.add_argument("--checkpoint-every", type=int, default=None,
                       help="checkpoint cadence in optimizer steps "
                            "(0 = final checkpoint only)")
        p.add_argument("--register-as", default="trained",
                       help="name the trained model evaluates under")
        p.add_argument("--pool", choices=("threads", "procs"),
                       default=None,
                       help="worker pool type for gradient "
                            "micro-batches (output is identical "
                            "either way)")
        p.add_argument("--pool-jobs", type=int, default=None,
                       help="resident worker lanes for a submitted "
                            "train job (local `repro train` uses "
                            "--jobs)")

    p = sub.add_parser("train",
                       help="checkpointed finetuning over a corpus "
                            "(resumable via --checkpoint-dir)")
    p.add_argument("paths", nargs="+",
                   help="Verilog files and/or directories to train on")
    p.add_argument("--seed", type=int, default=0,
                   help="augmentation seed for the corpus")
    p.add_argument("--completion-only", action="store_true",
                   help="train on the ablation (general aug) dataset")
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes for augmentation shards and "
                        "gradient micro-batches (default: the tuned "
                        "config, else 1; output is identical for any "
                        "setting)")
    p.add_argument("--no-tuned", action="store_true",
                   help="ignore the machine-local work/tune.json")
    p.add_argument("--tuned-config", default=None,
                   help="tuned-config path (default: "
                        "$REPRO_TUNE_CONFIG, then ./work/tune.json)")
    p.add_argument("--cache-dir",
                   help="augment shard cache; a warm cache means the "
                        "corpus loads with zero re-augmentation")
    p.add_argument("--shards", type=int, default=None)
    p.add_argument("--checkpoint-dir",
                   help="checkpoint store; an interrupted run resumes "
                        "here to bit-identical weights")
    p.add_argument("--out", help="write the trained-model artefact "
                                 "(JSON) to this path")
    p.add_argument("--report-out",
                   help="write the run report (loss curve, weights "
                        "digest) as JSON")
    add_train_options(p)
    p.set_defaults(fn=cmd_train)

    p = sub.add_parser("tune",
                       help="profile (jobs, pool, micro_batch, "
                            "cadence) candidates as service jobs and "
                            "persist the machine-local winner")
    p.add_argument("paths", nargs="+",
                   help="Verilog files/directories for the profiling "
                        "corpus")
    p.add_argument("--out", default=os.path.join("work", "tune.json"),
                   help="where to write the tuned config")
    p.add_argument("--store-dir", default=None,
                   help="job store + workdir for the profiling slices "
                        "(default: a fresh temp dir)")
    p.add_argument("--max-jobs", type=int, default=None,
                   help="widest worker pool to try (default: cpu "
                        "count, capped at 4)")
    p.add_argument("--epochs", type=int, default=1,
                   help="profiling-slice epochs")
    p.add_argument("--batch-size", type=int, default=8,
                   help="profiling-slice batch size")
    p.add_argument("--max-records", type=int, default=48,
                   help="profiling-slice dataset cap")
    p.add_argument("--seed", type=int, default=0,
                   help="augmentation seed for the profiling corpus")
    p.set_defaults(fn=cmd_tune)

    p = sub.add_parser("agent", help="Fig-1 agent loop on a benchmark")
    p.add_argument("problem")
    p.add_argument("--model", default="ours-13b")
    p.add_argument("--gds", action="store_true",
                   help="run the flow on the surviving design")
    p.set_defaults(fn=cmd_agent)

    def add_engine_options(p: argparse.ArgumentParser) -> None:
        p.add_argument("--jobs", type=int, default=1,
                       help="worker processes for benchmark cells "
                            "(default 1 = serial)")
        p.add_argument("--cache-dir",
                       help="persistent eval cell cache; warm re-runs "
                            "recompute nothing")

    p = sub.add_parser("tables", help="regenerate paper tables/figures")
    p.add_argument("--full", action="store_true")
    p.add_argument("--only", help="comma-separated ids, e.g. table5,fig3")
    add_engine_options(p)
    p.set_defaults(fn=cmd_tables)

    # Mirrors repro.bench.EVAL_SUITES (kept literal so parser construction
    # stays import-light; test_eval_engine pins the two together).
    EVAL_SUITES = ("generation", "rtllm", "rtllm-full", "thakur",
                   "repair", "scripts")
    p = sub.add_parser("evaluate",
                       help="run one benchmark suite on the shared "
                            "evaluation engine")
    p.add_argument("--suite", choices=EVAL_SUITES, default="generation",
                   help="benchmark suite id (default: generation = "
                        "the full Table-5 problem set)")
    p.add_argument("--models",
                   help="comma-separated model names (default: the "
                        "suite's paper column order)")
    p.add_argument("--samples", type=int, default=None,
                   help="samples per cell (default 5; max attempts for "
                        "scripts, default 10)")
    p.add_argument("--k", type=int, default=5,
                   help="k for the report's pass@k rows")
    p.add_argument("--levels",
                   help="comma-separated prompt levels "
                        "(generation suites; default low,middle,high)")
    p.add_argument("--seed", type=int, default=0,
                   help="benchmark-construction seed (repair suite)")
    p.add_argument("--sim-backend", choices=("compiled", "codegen", "interp"),
                   default=None,
                   help="simulator backend for testbench verdicts "
                        "(default: compiled, with automatic fallback "
                        "to the interpreter; reports are byte-identical "
                        "either way)")
    p.add_argument("--out", help="also write the report to this file")
    p.add_argument("--artifact", action="append",
                   help="trained-model artefact JSON (from `repro "
                        "train --out`) to register and score "
                        "(repeatable); include its name in --models "
                        "or omit --models to append it")
    add_engine_options(p)
    p.set_defaults(fn=cmd_evaluate)

    p = sub.add_parser("infer",
                       help="decode completions from a trained-model "
                            "artefact with the batched KV-cache "
                            "sampler")
    p.add_argument("artifact",
                   help="trained-model artefact JSON (from `repro "
                        "train --out`) carrying a weights bundle")
    p.add_argument("--prompt", action="append", required=True,
                   help="prompt text (repeatable; one completion each)")
    p.add_argument("--max-tokens", type=int, default=32,
                   help="new tokens to decode per prompt (default 32)")
    p.add_argument("--temperature", type=float, default=0.0,
                   help="0 = greedy (default); >0 samples")
    p.add_argument("--seed", type=int, default=0,
                   help="sampling seed (per-row streams are derived "
                        "from it content-stably)")
    p.add_argument("--out",
                   help="also write the result blob (JSON) to this "
                        "file")
    p.set_defaults(fn=cmd_infer)

    # Mirrors repro.serve.daemon.DEFAULT_PORT (kept literal so parser
    # construction stays import-light; test_serve_recovery pins them).
    DEFAULT_PORT = 8471

    p = sub.add_parser("serve",
                       help="run the crash-safe job daemon "
                            "(augment/train/evaluate/infer/simulate "
                            "as jobs)")
    p.add_argument("--store", required=True,
                   help="persistent job store directory (journal, "
                        "snapshot, results, caches)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=DEFAULT_PORT,
                   help=f"API port (default {DEFAULT_PORT}; 0 = "
                        "ephemeral, printed on startup)")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes per engine run inside a job")
    p.add_argument("--workers", type=int, default=2,
                   help="daemon worker threads executing batches")
    p.add_argument("--batch-limit", type=int, default=8,
                   help="max jobs grouped into one shared run")
    p.add_argument("--budget", action="append", metavar="KIND=N",
                   help="per-kind concurrent-batch budget, e.g. "
                        "simulate=4 (repeatable)")
    p.add_argument("--gateway", action="store_true",
                   help="serve through the asyncio multi-tenant "
                        "gateway (tenant rate limits, SSE streams, "
                        "backpressure) instead of the threaded server")
    p.add_argument("--max-queue-depth", type=int, default=512,
                   help="gateway admission ceiling on queued+running "
                        "jobs before submits get 429s (default 512)")
    p.add_argument("--tenant", action="append",
                   metavar="NAME=RATE[:BURST[:MAX_ACTIVE[:BOOST]]]",
                   help="gateway tenant policy (repeatable): token "
                        "bucket RATE/s + BURST, MAX_ACTIVE job quota, "
                        "BOOST added to submit priority; empty fields "
                        "keep defaults, e.g. paid=::64:10")
    p.add_argument("--strict-tenants", action="store_true",
                   help="reject requests with an unrecognised "
                        "X-Repro-Tenant header (403) instead of "
                        "applying the default policy")
    p.set_defaults(fn=cmd_serve)

    def add_client_options(p: argparse.ArgumentParser) -> None:
        p.add_argument("--url", default=f"http://127.0.0.1:{DEFAULT_PORT}",
                       help="daemon base URL")
        p.add_argument("--tenant", default=None,
                       help="X-Repro-Tenant header value (gateway "
                            "rate limits/quotas resolve against it)")

    p = sub.add_parser("submit", help="submit a job to the daemon")
    p.add_argument("--priority", type=int, default=0,
                   help="higher runs first (FIFO within a priority)")
    add_client_options(p)
    kinds = p.add_subparsers(dest="job_kind", required=True)

    k = kinds.add_parser("augment", help="augmentation job")
    k.add_argument("paths", nargs="+",
                   help="Verilog files/directories (daemon-local paths)")
    k.add_argument("--seed", type=int, default=0)
    k.add_argument("--completion-only", action="store_true")

    k = kinds.add_parser("train", help="finetuning job")
    k.add_argument("paths", nargs="+",
                   help="Verilog files/directories (daemon-local paths)")
    k.add_argument("--seed", type=int, default=0)
    k.add_argument("--completion-only", action="store_true")
    add_train_options(k)

    k = kinds.add_parser("evaluate", help="benchmark-suite job")
    k.add_argument("--suite", choices=EVAL_SUITES, default="generation")
    k.add_argument("--models")
    k.add_argument("--samples", type=int, default=None)
    k.add_argument("--k", type=int, default=5)
    k.add_argument("--levels")
    k.add_argument("--seed", type=int, default=0)
    k.add_argument("--sim-backend", choices=("compiled", "codegen", "interp"),
                   default=None)

    k = kinds.add_parser("infer",
                         help="decode completions from a trained "
                              "job's weights")
    k.add_argument("train_job",
                   help="train job id whose artefact supplies the "
                        "weights bundle")
    k.add_argument("--trained-name", default="trained",
                   help="the train job's register_as name "
                        "(default: trained)")
    k.add_argument("--prompt", action="append", required=True,
                   help="prompt text (repeatable; one completion each)")
    k.add_argument("--max-tokens", type=int, default=32)
    k.add_argument("--temperature", type=float, default=0.0)
    k.add_argument("--seed", type=int, default=0)

    k = kinds.add_parser("simulate", help="simulation job")
    k.add_argument("file", help="Verilog file (inlined into the spec)")
    k.add_argument("--top")
    k.add_argument("--sim-backend", choices=("compiled", "codegen", "interp"),
                   default=None)
    k.add_argument("--vcd", action="store_true",
                   help="include VCD text in the result blob")

    k = kinds.add_parser("experiment",
                         help="paper table/figure by registry id")
    k.add_argument("name", help="experiment id, e.g. table5")
    k.add_argument("--full", action="store_true")

    k = kinds.add_parser("probe",
                         help="near-zero-cost serving probe (echoes "
                              "a payload; stress/health checks)")
    k.add_argument("--payload", default="",
                   help="JSON value to echo (default empty string)")
    k.add_argument("--sleep-ms", type=int, default=0,
                   help="simulated execution time (drain scenarios)")
    p.set_defaults(fn=cmd_submit)

    p = sub.add_parser("status", help="job/daemon status")
    p.add_argument("job", nargs="?",
                   help="job id (omit to list all jobs + health)")
    add_client_options(p)
    p.set_defaults(fn=cmd_status)

    p = sub.add_parser("result", help="fetch a finished job's result")
    p.add_argument("job")
    p.add_argument("--json", action="store_true",
                   help="print the raw result blob")
    p.add_argument("--out", help="also write the output to this file")
    add_client_options(p)
    p.set_defaults(fn=cmd_result)

    p = sub.add_parser("cancel", help="cancel a queued job")
    p.add_argument("job")
    add_client_options(p)
    p.set_defaults(fn=cmd_cancel)

    p = sub.add_parser("pipeline",
                       help="submit augment → train → evaluate as one "
                            "dependency DAG; the evaluate stage scores "
                            "the freshly trained model")
    p.add_argument("paths", nargs="+",
                   help="Verilog files/directories (daemon-local paths)")
    p.add_argument("--seed", type=int, default=0,
                   help="augmentation seed for the corpus stages")
    p.add_argument("--completion-only", action="store_true")
    add_train_options(p)
    p.add_argument("--suite", choices=EVAL_SUITES, default="thakur",
                   help="benchmark suite for the evaluate stage")
    p.add_argument("--models",
                   help="comma-separated models to score (default: "
                        "just the trained model; add baselines for a "
                        "side-by-side)")
    p.add_argument("--samples", type=int, default=None)
    p.add_argument("--k", type=int, default=5)
    p.add_argument("--levels")
    p.add_argument("--sim-backend", choices=("compiled", "codegen", "interp"),
                   default=None)
    p.add_argument("--priority", type=int, default=0)
    p.add_argument("--no-wait", action="store_true",
                   help="submit the DAG and return without polling")
    p.add_argument("--timeout", type=float, default=600.0,
                   help="seconds to wait for the DAG to finish")
    p.add_argument("--out", help="also write the evaluation report to "
                                 "this file")
    add_client_options(p)
    p.set_defaults(fn=cmd_pipeline)

    p = sub.add_parser("dag",
                       help="validate/run/submit a user-defined job "
                            "DAG spec file (nodes of any job kind, "
                            "'after' edges, foreach fan-out)")
    p.add_argument("spec", help="JSON flow spec file")
    p.add_argument("--check", action="store_true",
                   help="validate + print the expanded graph, run "
                        "nothing")
    p.add_argument("--direct", action="store_true",
                   help="execute serially in process instead of "
                        "submitting to a daemon")
    p.add_argument("--workdir",
                   help="work dir for --direct (default: fresh temp)")
    p.add_argument("--jobs", type=int, default=1,
                   help="engine parallelism for --direct")
    p.add_argument("--timeout", type=float, default=600.0)
    p.add_argument("--out", help="write per-node results JSON here")
    add_client_options(p)
    p.set_defaults(fn=cmd_dag)

    p = sub.add_parser("scenarios",
                       help="declarative scenario registry: paper "
                            "sweeps + chaos + perf floors, regression-"
                            "gated by expected score ranges")
    scen = p.add_subparsers(dest="scenarios_cmd", required=True)
    q = scen.add_parser("list", help="list registered scenarios")
    q.add_argument("--tag", help="only scenarios carrying this tag")
    q.set_defaults(fn=cmd_scenarios)
    q = scen.add_parser("run", help="run a scenario selection")
    q.add_argument("--all", action="store_true",
                   help="run every registered scenario")
    q.add_argument("--name", action="append",
                   help="run this scenario (repeatable)")
    q.add_argument("--tag", help="run scenarios carrying this tag")
    q.add_argument("--via", choices=("direct", "daemon"),
                   default="direct",
                   help="execute flow scenarios in process or through "
                        "a private in-process daemon")
    q.add_argument("--jobs", type=int, default=1,
                   help="engine parallelism inside scenarios")
    q.add_argument("--root", help="scratch root (default: fresh temp)")
    q.add_argument("--out",
                   help="write the machine-readable report JSON here")
    q.set_defaults(fn=cmd_scenarios)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
