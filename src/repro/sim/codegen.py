"""Codegen simulation backend: emit an importable Python module per design.

The closure backend (:mod:`repro.sim.compile`) lowers a design into
nested Python closures — fast, but closures cannot pickle, so every
pool worker re-lowers every design on every warm run.  This module
lowers an elaborated :class:`~repro.sim.elaborate.Design` **once** into
generated Python *source text*: a self-contained module with a flat
slot store, precomputed sensitivity/edge tables and flat reactive
process functions, honouring the exact runtime contract of the closure
backend (:class:`~repro.sim.compile._CAssign` /
:class:`~repro.sim.compile._CReactive` /
:class:`~repro.sim.compile._CCoroutine` driven by
:class:`~repro.sim.compile.CompiledSimulator`).  The source string is

* persistable under the :class:`~repro.sim.compile.CompiledDesignCache`
  root (content-addressed by ``source_digest`` + compile/codegen
  versions + the Python major.minor — see :func:`codegen_key`), and
* loadable in **any** process via :func:`load_generated` (a plain
  ``exec``) — a warm worker fleet re-lowers nothing, ever.

Semantics are transcribed construct-for-construct from the closure
lowerer, which itself mirrors the interpreter branch-for-branch; the
differential fuzzer and the golden transcript+VCD suite pin all three
backends together.  Anything the shared analysis cannot lower raises
:class:`~repro.sim.compile.CompileUnsupported` (a persistable verdict —
the closure backend would fail identically); limits specific to source
emission (e.g. pathological generated-code size) raise the subclass
:class:`CodegenUnsupported`, which callers must *not* persist to the
shared verdict layer because the closure backend still handles those
designs.
"""

from __future__ import annotations

import sys

from . import values as V
from .compile import (CompileUnsupported, _Lower, _Scope, _WatchSpec,
                      backend_stats, SIM_COMPILE_VERSION)
from .elaborate import Design
from .engine import SimulationError
from .format import parse_template, scope_name
from ..verilog import ast

#: Bump when the emitter changes shape; invalidates every persisted
#: generated-source artefact (folded into :func:`codegen_key`).
SIM_CODEGEN_VERSION = 1

#: Ceilings on generated code size.  Nested ternaries duplicate their
#: true branch (once per x-merge arm), so adversarial designs could
#: otherwise explode the emitted text; past these limits the closure
#: backend — whose cost stays linear — takes over.
_MAX_EXPR_CHARS = 100_000
_MAX_MODULE_CHARS = 2_000_000


class CodegenUnsupported(CompileUnsupported):
    """Source emission (only) cannot handle this design.

    The closure backend still can, so this verdict must stay local to
    the codegen path — persisting it to the shared unsupported-verdict
    layer would wrongly push ``backend="compiled"`` users to the
    interpreter.
    """


def codegen_key(digest: str) -> str:
    """Cache key of one generated-source artefact.

    Folds the design's :func:`~repro.sim.compile.source_digest` (which
    already covers :data:`~repro.sim.compile.SIM_COMPILE_VERSION`) with
    the emitter version and the running Python major.minor: generated
    modules are Python source compiled for this interpreter line, and
    an upgraded interpreter must never load a stale artefact.
    """
    return (f"{digest}-cg{SIM_CODEGEN_VERSION}"
            f"-py{sys.version_info[0]}.{sys.version_info[1]}")


# --------------------------------------------------------------------------
# Runtime helpers (imported by every generated module)
# --------------------------------------------------------------------------

def _rt_err(message):
    """Lazy error — generated code calls this exactly where the closure
    backend's ``_raiser`` closures would fire."""
    raise SimulationError(message)


def _rt_rand(rt):
    rt._rand_state = (rt._rand_state * 1103515245 + 12345) & 0xFFFFFFFF
    return V.Value.of(rt._rand_state, 32)


def _rt_neg(value):
    return V.sub(V.Value.of(0, value.width), value)


def _rt_xmerge(a, b):
    """Ternary with an x condition: bitwise agreement of both arms."""
    width = max(a.width, b.width)
    a, b = a.resized(width), b.resized(width)
    same = ~(a.val ^ b.val) & ~(a.xz | b.xz)
    return V.Value(width=width, val=a.val & same,
                   xz=((1 << width) - 1) & ~same)


def _rt_clog2(value):
    if value.has_unknown:
        return V.Value.unknown(32)
    return V.Value.of(max(value.to_int() - 1, 0).bit_length(), 32)


def _rt_replc(count):
    if count.has_unknown:
        raise SimulationError("replication count is x")
    return count.to_int()


def _rt_psel(hi, lo, base, base_bit, descending):
    """Ranged part select of a signal value (dynamic bounds)."""
    hi = hi.to_int()
    lo = lo.to_int()
    if descending:
        return base.select_range(hi - base_bit, lo - base_bit)
    return base.select_range(base_bit - hi, base_bit - lo)


def _rt_pselg(hi, lo, base):
    """Ranged part select of a general base expression."""
    return base.select_range(hi.to_int(), lo.to_int())


def _rt_ipsel(start, width, base, base_bit, descending, plus):
    """Indexed part select (``+:``/``-:``) of a signal value."""
    width = width.to_int()
    if start.has_unknown:
        return V.Value.unknown(width)
    start_idx = start.to_int()
    if plus:
        lo, hi = start_idx, start_idx + width - 1
    else:
        lo, hi = start_idx - width + 1, start_idx
    if descending:
        return base.select_range(hi - base_bit, lo - base_bit)
    return base.select_range(base_bit - hi, base_bit - lo)


def _rt_ipselg(start, width, base, plus):
    """Indexed part select of a general base (start known, width int)."""
    start_idx = start.to_int()
    if plus:
        lo, hi = start_idx, start_idx + width - 1
    else:
        lo, hi = start_idx - width + 1, start_idx
    return base.select_range(hi, lo)


def _rt_wsel(rt, slot, hi, lo, base_bit, descending, value):
    """Part-select write into a signal slot (dynamic bounds)."""
    off_hi = (hi - base_bit) if descending else (base_bit - hi)
    off_lo = (lo - base_bit) if descending else (base_bit - lo)
    rt.set_slot(slot, rt.store[slot].with_bits(
        max(off_hi, off_lo), min(off_hi, off_lo), value))


def load_generated(source_text: str):
    """Exec one generated module and return its ``CompiledDesign``.

    The module is self-contained (it imports only :mod:`repro.sim`
    runtime pieces), so this works in any process — the whole point:
    a warm worker loads the artefact from disk instead of re-lowering.
    """
    code = compile(source_text, "<repro.sim.codegen>", "exec")
    namespace: dict = {"__name__": "repro.sim._generated"}
    exec(code, namespace)
    return namespace["build"]()


# --------------------------------------------------------------------------
# The emitter
# --------------------------------------------------------------------------

#: Binary operators that map straight onto values-module functions
#: (mirrors ``Simulator._BINOPS`` — no short-circuit for ``&&``/``||``).
_BINOP_FNS = {
    "+": "V.add", "-": "V.sub", "*": "V.mul", "/": "V.div",
    "%": "V.mod", "**": "V.power", "&": "V.bit_and", "|": "V.bit_or",
    "^": "V.bit_xor", "^~": "V.bit_xnor", "~^": "V.bit_xnor",
    "&&": "V.logic_and", "||": "V.logic_or",
}

_DISPLAY = ("$display", "$write", "$strobe", "$monitor", "$error",
            "$warning", "$info")


class _Emit:
    """One emission pass over a Design; produces module source text.

    Reuses :class:`~repro.sim.compile._Lower` for every *analysis*
    question (slots, costs, dependency/sensitivity sets, signedness,
    lvalue widths) so the two backends cannot drift on those answers;
    only the code generation itself lives here.
    """

    def __init__(self, design: Design):
        self.design = design
        self.low = _Lower(design)
        self.pool: list[V.Value] = []
        self.pool_ix: dict[tuple[int, int, int], int] = {}
        self.watch_entries: list[tuple] = []
        self.watch_ix: dict[tuple, int] = {}
        self.req_entries: list[str] = []  # yield-request tuple codes
        self.req_ix: dict[str, int] = {}
        self.funcs: list[str] = []        # module-level def blocks
        self.proc_entries: list[str] = []
        self.fn_plans: dict[tuple[str, str], tuple] = {}
        self.writer_ix: dict[tuple[str, ...], str] = {}
        self._counter = 0
        self.stats = {"signals": len(self.low.names), "procs": 0,
                      "reactive": 0, "coroutines": 0, "assigns": 0,
                      "functions": 0}
        self._eval_ns = {
            "V": V, "K": self.pool, "max": max, "min": min,
            "_neg": _rt_neg, "_xm": _rt_xmerge, "_clog2": _rt_clog2,
            "_replc": _rt_replc, "_psel": _rt_psel, "_pselg": _rt_pselg,
            "_ipsel": _rt_ipsel, "_ipselg": _rt_ipselg,
        }

    # -- small utilities -------------------------------------------------

    def _tmp(self) -> str:
        self._counter += 1
        return f"t{self._counter}"

    def _kref(self, value: V.Value) -> str:
        key = (value.width, value.val, value.xz)
        index = self.pool_ix.get(key)
        if index is None:
            index = len(self.pool)
            self.pool.append(value)
            self.pool_ix[key] = index
        return f"K[{index}]"

    def _kunknown(self, width: int) -> str:
        return self._kref(V.Value.unknown(width))

    def _const_of(self, code: str) -> V.Value | None:
        """The pooled Value behind a ``K[i]`` reference, else None."""
        if code.startswith("K[") and code.endswith("]"):
            try:
                return self.pool[int(code[2:-1])]
            except ValueError:
                return None
        return None

    def _wref(self, spec: _WatchSpec) -> str:
        """Intern a watch spec; returns a ``W[i]`` reference.

        Flattened in ``edges``-dict order, which reproduces the same
        ``_WatchSpec`` (same edges dict, same slots tuple) when the
        generated module rebuilds it over NAMES/_sigs.
        """
        entries = tuple((slot, edge) for slot, edges in spec.edges.items()
                        for edge in edges)
        index = self.watch_ix.get(entries)
        if index is None:
            index = len(self.watch_entries)
            self.watch_entries.append(entries)
            self.watch_ix[entries] = index
        return f"W[{index}]"

    def _qref(self, code: str) -> str:
        """Intern a scheduler-request tuple expression (``("delay", 5)``
        / ``("wait", W[i])``) as a module constant — testbench loops
        yield these every iteration; interning kills the per-iteration
        tuple allocation."""
        index = self.req_ix.get(code)
        if index is None:
            index = len(self.req_entries)
            self.req_entries.append(code)
            self.req_ix[code] = index
        return f"Q[{index}]"

    def _resized(self, vcode: str, width: int) -> str:
        """``(<vcode>).resized(width)``, folded when vcode is a pooled
        constant — the closure backend calls ``resized`` at runtime, but
        on a constant the result is itself constant."""
        value = self._const_of(vcode)
        if value is not None:
            return self._kref(value.resized(width))
        return f"({vcode}).resized({width})"

    def _err(self, message: str) -> str:
        return f"_err({message!r})"

    # -- expressions -----------------------------------------------------

    def _expr(self, expr: ast.Expr, scope: _Scope) -> tuple[str, bool]:
        """Emit one expression; returns (code, is_const).

        Mirrors ``_Lower._expr``: constant subtrees are folded at
        emission time by evaluating the generated code itself — a
        SimulationError during folding means the code raises lazily at
        runtime (division-by-x style), exactly like the closure
        backend.
        """
        code, const = self._expr_raw(expr, scope)
        if len(code) > _MAX_EXPR_CHARS:
            raise CodegenUnsupported("generated expression too large")
        if const:
            value = self._const_of(code)
            if value is not None:
                return code, True
            try:
                value = eval(code, dict(self._eval_ns))  # noqa: S307
            except SimulationError:
                return code, False      # raises lazily, mirror runtime
            return self._kref(value), True
        return code, False

    def _expr_raw(self, expr: ast.Expr, scope: _Scope) -> tuple[str, bool]:
        if isinstance(expr, ast.Number):
            return self._kref(V.from_literal(expr.text)), True
        if isinstance(expr, ast.Identifier):
            return self._identifier(expr.name, scope)
        if isinstance(expr, ast.HierarchicalId):
            name = ".".join(expr.parts)
            signal = self.design.signals.get(scope.prefix + name) or \
                self.design.signals.get(name)
            if signal is None:
                return self._err(
                    f"unknown hierarchical name '{name}'"), False
            return f"S[{self.low.slots[signal.name]}]", False
        if isinstance(expr, ast.StringLiteral):
            data = expr.value.encode()
            width = max(8 * len(data), 8)
            return self._kref(V.Value.of(
                int.from_bytes(data, "big") if data else 0, width)), True
        if isinstance(expr, ast.Unary):
            return self._unary(expr, scope)
        if isinstance(expr, ast.Binary):
            return self._binary(expr, scope)
        if isinstance(expr, ast.Ternary):
            return self._ternary(expr, scope)
        if isinstance(expr, ast.Concat):
            parts = [self._expr(p, scope) for p in expr.parts]
            code = "V.concat([" + ", ".join(c for c, _ in parts) + "])"
            return code, all(c for _, c in parts)
        if isinstance(expr, ast.Repl):
            count, count_const = self._expr(expr.count, scope)
            parts = [self._expr(p, scope) for p in expr.parts]
            code = (f"V.replicate(_replc({count}), V.concat(["
                    + ", ".join(c for c, _ in parts) + "]))")
            return code, count_const and all(c for _, c in parts)
        if isinstance(expr, ast.Index):
            return self._index(expr, scope)
        if isinstance(expr, ast.PartSelect):
            return self._part_select(expr, scope)
        if isinstance(expr, ast.FunctionCall):
            return self._call(expr, scope)
        return self._err(f"cannot evaluate expression "
                         f"{type(expr).__name__}"), False

    def _identifier(self, name: str, scope: _Scope) -> tuple[str, bool]:
        if scope.locals is not None and name in scope.locals:
            return f"fr[{scope.locals[name]}]", False
        resolved = scope.resolve(name)
        if resolved is not None:
            slot, signal = resolved
            if signal.is_array:
                return self._err(f"memory '{name}' used without "
                                 f"an index"), False
            return f"S[{slot}]", False
        params = scope.params()
        if name in params:
            return self._kref(params[name]), True
        return self._err(f"identifier '{name}' is not declared"), False

    def _unary(self, expr: ast.Unary, scope: _Scope) -> tuple[str, bool]:
        operand, const = self._expr(expr.operand, scope)
        op = expr.op
        if op == "+":
            return operand, const
        if op == "-":
            return f"_neg({operand})", const
        if op == "~":
            return f"V.bit_not({operand})", const
        if op == "!":
            return f"V.logic_not({operand})", const
        return f"V.reduce_op({op!r}, {operand})", const

    def _binary(self, expr: ast.Binary, scope: _Scope) -> tuple[str, bool]:
        op = expr.op
        left, lconst = self._expr(expr.left, scope)
        right, rconst = self._expr(expr.right, scope)
        const = lconst and rconst
        handler = _BINOP_FNS.get(op)
        if handler is not None:
            return f"{handler}({left}, {right})", const
        if op in ("<<", "<<<"):
            return f"V.shift_left({left}, {right})", const
        if op == ">>":
            return f"V.shift_right({left}, {right})", const
        if op == ">>>":
            signed = self.low._is_signed(expr.left, scope)
            return (f"V.shift_right({left}, {right}, arithmetic=True, "
                    f"signed={signed!r})"), const
        if op in ("==", "!=", "===", "!==", "<", "<=", ">", ">="):
            signed = (self.low._is_signed(expr.left, scope)
                      and self.low._is_signed(expr.right, scope))
            return (f"V.compare({op!r}, {left}, {right}, "
                    f"signed={signed!r})"), const
        return self._err(f"unsupported binary operator '{op}'"), False

    def _ternary(self, expr: ast.Ternary, scope: _Scope) -> tuple[str, bool]:
        cond, cconst = self._expr(expr.cond, scope)
        if_true, tconst = self._expr(expr.if_true, scope)
        if_false, fconst = self._expr(expr.if_false, scope)
        tmp = self._tmp()
        code = (f"(({if_true}) if ({tmp} := ({cond})).is_true else "
                f"(_xm({if_true}, {if_false}) if {tmp}.has_unknown "
                f"else ({if_false})))")
        return code, cconst and tconst and fconst

    def _index(self, expr: ast.Index, scope: _Scope) -> tuple[str, bool]:
        index, iconst = self._expr(expr.index, scope)
        # Like the closure backend (and the interpreter), the base
        # resolves against module signals even where a fn local shadows.
        if isinstance(expr.base, ast.Identifier):
            resolved = scope.resolve(expr.base.name)
            if resolved is not None:
                slot, signal = resolved
                if signal.is_array:
                    unk = self._kunknown(signal.width)
                    cval = self._const_of(index) if iconst else None
                    if cval is not None:
                        if cval.has_unknown:
                            return unk, False
                        return (f"rt.arrays[{slot}].get({cval.to_int()}, "
                                f"{unk})"), False
                    tmp = self._tmp()
                    return (f"({unk} if ({tmp} := ({index})).has_unknown "
                            f"else rt.arrays[{slot}].get({tmp}.to_int(), "
                            f"{unk}))"), False
                descending = signal.msb >= signal.lsb
                base_bit = signal.lsb
                cval = self._const_of(index) if iconst else None
                if cval is not None:
                    if cval.has_unknown:
                        return self._kunknown(1), False
                    offset = (cval.to_int() - base_bit) if descending \
                        else (base_bit - cval.to_int())
                    return f"S[{slot}].select_bit({offset})", False
                tmp = self._tmp()
                if descending:
                    off = f"{tmp}.to_int() - {base_bit}" if base_bit \
                        else f"{tmp}.to_int()"
                else:
                    off = f"{base_bit} - {tmp}.to_int()"
                return (f"({self._kunknown(1)} if ({tmp} := ({index}))"
                        f".has_unknown else S[{slot}]"
                        f".select_bit({off}))"), False
        base, bconst = self._expr(expr.base, scope)
        return f"({base}).select_bit({index})", bconst and iconst

    def _part_select(self, expr: ast.PartSelect,
                     scope: _Scope) -> tuple[str, bool]:
        base_info = None           # (slot, signal) for plain signals
        if isinstance(expr.base, ast.Identifier):
            resolved = scope.resolve(expr.base.name)
            if resolved is not None and not resolved[1].is_array:
                base_info = resolved
        msb, mconst = self._expr(expr.msb, scope)
        lsb, lconst = self._expr(expr.lsb, scope)
        if expr.mode == ":":
            if base_info is not None:
                slot, signal = base_info
                descending = signal.msb >= signal.lsb
                base_bit = signal.lsb
                chi = self._const_of(msb) if mconst else None
                clo = self._const_of(lsb) if lconst else None
                if chi is not None and clo is not None:
                    hi, lo = chi.to_int(), clo.to_int()
                    off_hi = (hi - base_bit) if descending \
                        else (base_bit - hi)
                    off_lo = (lo - base_bit) if descending \
                        else (base_bit - lo)
                    return (f"S[{slot}].select_range({off_hi}, "
                            f"{off_lo})"), False
                return (f"_psel({msb}, {lsb}, S[{slot}], {base_bit}, "
                        f"{descending!r})"), False
            base, bconst = self._expr(expr.base, scope)
            return (f"_pselg({msb}, {lsb}, ({base}))",
                    bconst and mconst and lconst)
        # Indexed part select: base[i +: w] / base[i -: w]
        plus = expr.mode == "+:"
        if base_info is not None:
            slot, signal = base_info
            descending = signal.msb >= signal.lsb
            base_bit = signal.lsb
            cstart = self._const_of(msb) if mconst else None
            cwidth = self._const_of(lsb) if lconst else None
            if cstart is not None and cwidth is not None:
                width = cwidth.to_int()
                if cstart.has_unknown:
                    return self._kunknown(width), False
                start_idx = cstart.to_int()
                if plus:
                    lo, hi = start_idx, start_idx + width - 1
                else:
                    lo, hi = start_idx - width + 1, start_idx
                off_hi = (hi - base_bit) if descending \
                    else (base_bit - hi)
                off_lo = (lo - base_bit) if descending \
                    else (base_bit - lo)
                return (f"S[{slot}].select_range({off_hi}, "
                        f"{off_lo})"), False
            return (f"_ipsel({msb}, {lsb}, S[{slot}], {base_bit}, "
                    f"{descending!r}, {plus!r})"), False
        base, bconst = self._expr(expr.base, scope)
        # The closure backend never evaluates the base when the start
        # index is unknown; the tuple forces start-then-width order.
        ts, tw = self._tmp(), self._tmp()
        code = (f"(V.Value.unknown({tw}) if (({ts} := ({msb})), "
                f"({tw} := ({lsb}).to_int()))[0].has_unknown else "
                f"_ipselg({ts}, {tw}, ({base}), {plus!r}))")
        return code, bconst and mconst and lconst

    # -- function calls --------------------------------------------------

    def _call(self, expr: ast.FunctionCall, scope: _Scope) -> tuple[str, bool]:
        if expr.is_system:
            return self._system_call(expr, scope)
        fn = self.design.functions.get(scope.prefix, {}).get(expr.name)
        if fn is None:
            return self._err(f"unknown function '{expr.name}'"), False
        fc_name, arg_widths = self._function_plan(fn, scope)
        n_args = len(arg_widths)
        args = [self._expr(a, scope)[0] for a in expr.args[:n_args]]
        # Missing arguments bind unknown of the declared width, exactly
        # like the closure backend's frame fill.
        for pos in range(len(args), n_args):
            args.append(self._kunknown(arg_widths[pos]))
        # Extra arguments are never evaluated at runtime (the closure
        # backend compiles but never calls them) — emit-and-discard so
        # unsupported constructs inside them still veto the compile.
        for extra in expr.args[n_args:]:
            self._expr(extra, scope)
        call = ", ".join(["rt"] + args)
        return f"{fc_name}({call})", False

    def _function_plan(self, fn: ast.FunctionDecl,
                       scope: _Scope) -> tuple[str, tuple[int, ...]]:
        key = (scope.prefix, fn.name)
        cached = self.fn_plans.get(key)
        if cached is not None:
            return cached
        # The analysis half (widths, frame layout) is the closure
        # lowerer's verbatim plan; raises CompileUnsupported alike.
        from .elaborate import const_eval
        params = scope.params()
        ret_width = 1
        if fn.range is not None:
            msb = const_eval(fn.range.msb, params).to_int()
            lsb = const_eval(fn.range.lsb, params).to_int()
            ret_width = abs(msb - lsb) + 1
        locals_map: dict[str, int] = {fn.name: 0}
        local_widths: dict[str, int] = {fn.name: ret_width}
        arg_widths: list[int] = []
        decl_inits: list[tuple[int, int]] = []
        for item in fn.items:
            if isinstance(item, ast.PortDecl) and item.direction == "input":
                for name in item.names:
                    width = 1
                    if item.range is not None:
                        msb = const_eval(item.range.msb, params).to_int()
                        lsb = const_eval(item.range.lsb, params).to_int()
                        width = abs(msb - lsb) + 1
                    locals_map[name] = len(locals_map)
                    local_widths[name] = width
                    arg_widths.append(width)
            elif isinstance(item, ast.Decl):
                for decl in item.declarators:
                    width = 32 if item.kind == "integer" else 1
                    if item.range is not None:
                        msb = const_eval(item.range.msb, params).to_int()
                        lsb = const_eval(item.range.lsb, params).to_int()
                        width = abs(msb - lsb) + 1
                    locals_map[decl.name] = len(locals_map)
                    local_widths[decl.name] = width
                    decl_inits.append((locals_map[decl.name], width))
        n = len(self.fn_plans)
        fc_name = f"_fc{n}"
        plan = (fc_name, tuple(arg_widths))
        # Register before emitting the body so recursive calls resolve.
        self.fn_plans[key] = plan
        if fn.body is not None and self._needs_coroutine(fn.body):
            raise CompileUnsupported(
                "delay or event control inside a function")
        fn_scope = scope.fn_scope(locals_map, local_widths)
        body: list[str] = []
        if fn.body is not None:
            self._stmt(fn.body, fn_scope, body, "    ", coro=False)
        # Wrapper: builds the frame exactly like the closure backend
        # (return slot first, args resized, missing args and declared
        # locals unknown), runs the body, returns the return slot.
        params_sig = ", ".join(
            ["rt"] + [f"a{i}" for i in range(len(arg_widths))])
        lines = [f"def {fc_name}({params_sig}):"]
        lines.append(f"    fr = [None] * {len(locals_map)}")
        lines.append(f"    fr[0] = {self._kunknown(ret_width)}")
        for pos, width in enumerate(arg_widths):
            lines.append(f"    fr[{pos + 1}] = a{pos}.resized({width})")
        for idx, width in decl_inits:
            lines.append(f"    fr[{idx}] = {self._kunknown(width)}")
        lines.extend(self._with_aliases(body, "    "))
        lines.append("    return fr[0]")
        self.funcs.append("\n".join(lines))
        self.stats["functions"] += 1
        return plan

    def _system_call(self, expr: ast.FunctionCall,
                     scope: _Scope) -> tuple[str, bool]:
        name = expr.name
        if name == "$time":
            return "V.Value.of(rt.time, 64)", False
        if name == "$random":
            return "_rand(rt)", False
        if name in ("$signed", "$unsigned"):
            return self._expr(expr.args[0], scope)
        if name == "$clog2":
            arg, const = self._expr(expr.args[0], scope)
            return f"_clog2({arg})", const
        return self._err(f"unsupported system function '{name}'"), False

    # -- needs-coroutine (re-exported analysis) --------------------------

    @staticmethod
    def _needs_coroutine(stmt) -> bool:
        from .compile import _needs_coroutine
        return _needs_coroutine(stmt)

    # -- alias prologue --------------------------------------------------

    @staticmethod
    def _with_aliases(body: list[str], ind: str) -> list[str]:
        """Prepend hot-attribute aliases a body actually uses.

        ``S`` binds ``rt.store`` once per activation; ``ss`` binds
        ``rt.set_slot`` when the body writes more than one slot — the
        two hottest attribute lookups in the runtime.
        """
        text = "\n".join(body)
        out = []
        if "rt.charge_always(" in text:
            text = text.replace("rt.charge_always(", "ca(")
            out.append(f"{ind}ca = rt.charge_always")
        if "rt.charge(" in text:
            text = text.replace("rt.charge(", "ch(")
            out.append(f"{ind}ch = rt.charge")
        if text.count("rt.display_lines.append(") >= 2:
            text = text.replace("rt.display_lines.append(", "dl(")
            out.append(f"{ind}dl = rt.display_lines.append")
        if text.count("rt.set_slot(") >= 2:
            text = text.replace("rt.set_slot(", "ss(")
            out.append(f"{ind}ss = rt.set_slot")
        if "S[" in text:
            out.append(f"{ind}S = rt.store")
        out.extend(text.split("\n") if text else [])
        if not out:
            out.append(f"{ind}pass")
        return out

    # -- writers ---------------------------------------------------------

    def _write_lines(self, lhs: ast.Expr, scope: _Scope, vname: str,
                     out: list[str], ind: str) -> None:
        """Emit the statements writing ``vname`` (safe to re-reference)
        into ``lhs`` — the statement twin of ``compile_writer``."""
        if isinstance(lhs, ast.Concat):
            self._concat_write(lhs, scope, vname, out, ind)
            return
        if isinstance(lhs, ast.Identifier):
            if scope.locals is not None and lhs.name in scope.locals:
                idx = scope.locals[lhs.name]
                width = scope.local_widths[lhs.name]
                out.append(f"{ind}fr[{idx}] = {self._resized(vname, width)}")
                return
            resolved = scope.resolve(lhs.name)
            if resolved is None:
                out.append(ind + self._err(
                    f"identifier '{lhs.name}' is not declared"))
                return
            slot, signal = resolved
            out.append(f"{ind}rt.set_slot({slot}, "
                       f"{self._resized(vname, signal.width)})")
            return
        if isinstance(lhs, ast.HierarchicalId):
            name = ".".join(lhs.parts)
            signal = self.design.signals.get(scope.prefix + name) or \
                self.design.signals.get(name)
            if signal is None:
                out.append(ind + self._err(
                    f"unknown hierarchical name '{name}'"))
                return
            slot = self.low.slots[signal.name]
            out.append(f"{ind}rt.set_slot({slot}, "
                       f"{self._resized(vname, signal.width)})")
            return
        if isinstance(lhs, ast.Index):
            self._index_write(lhs, scope, vname, out, ind)
            return
        if isinstance(lhs, ast.PartSelect):
            self._select_write(lhs, scope, vname, out, ind)
            return
        out.append(ind + self._err(
            f"invalid assignment target {type(lhs).__name__}"))

    def _index_write(self, lhs: ast.Index, scope: _Scope, vname: str,
                     out: list[str], ind: str) -> None:
        if not isinstance(lhs.base, ast.Identifier):
            out.append(ind + self._err("unsupported nested lvalue index"))
            return
        resolved = scope.resolve(lhs.base.name)
        if resolved is None:
            out.append(ind + self._err(
                f"identifier '{lhs.base.name}' is not declared"))
            return
        slot, signal = resolved
        index, iconst = self._expr(lhs.index, scope)
        cval = self._const_of(index) if iconst else None
        if signal.is_array:
            width = signal.width
            if cval is not None:
                if not cval.has_unknown:   # write to x index is lost
                    out.append(f"{ind}rt.set_element({slot}, "
                               f"{cval.to_int()}, "
                               f"{self._resized(vname, width)})")
                return
            tmp = self._tmp()
            out.append(f"{ind}{tmp} = {index}")
            out.append(f"{ind}if not {tmp}.has_unknown:")
            out.append(f"{ind}    rt.set_element({slot}, {tmp}.to_int(), "
                       f"{vname}.resized({width}))")
            return
        descending = signal.msb >= signal.lsb
        base_bit = signal.lsb
        width = signal.width
        if cval is not None:
            if cval.has_unknown:           # write to x index is lost
                return
            offset = (cval.to_int() - base_bit) if descending \
                else (base_bit - cval.to_int())
            if 0 <= offset < width:
                out.append(f"{ind}rt.set_slot({slot}, S[{slot}]"
                           f".with_bits({offset}, {offset}, {vname}))")
            return
        tmp = self._tmp()
        off = self._tmp()
        out.append(f"{ind}{tmp} = {index}")
        out.append(f"{ind}if not {tmp}.has_unknown:")
        if descending:
            expr_off = f"{tmp}.to_int() - {base_bit}" if base_bit \
                else f"{tmp}.to_int()"
        else:
            expr_off = f"{base_bit} - {tmp}.to_int()"
        out.append(f"{ind}    {off} = {expr_off}")
        out.append(f"{ind}    if 0 <= {off} < {width}:")
        out.append(f"{ind}        rt.set_slot({slot}, S[{slot}]"
                   f".with_bits({off}, {off}, {vname}))")

    def _select_write(self, lhs: ast.PartSelect, scope: _Scope,
                      vname: str, out: list[str], ind: str) -> None:
        if not isinstance(lhs.base, ast.Identifier):
            out.append(ind + self._err("unsupported nested lvalue select"))
            return
        resolved = scope.resolve(lhs.base.name)
        if resolved is None:
            out.append(ind + self._err(
                f"identifier '{lhs.base.name}' is not declared"))
            return
        slot, signal = resolved
        descending = signal.msb >= signal.lsb
        base_bit = signal.lsb
        msb, mconst = self._expr(lhs.msb, scope)
        lsb, lconst = self._expr(lhs.lsb, scope)
        chi = self._const_of(msb) if mconst else None
        clo = self._const_of(lsb) if lconst else None
        if chi is not None and clo is not None:
            a, b = chi.to_int(), clo.to_int()
            if lhs.mode == ":":
                hi, lo = a, b
            elif lhs.mode == "+:":
                lo, hi = a, a + b - 1
            else:
                hi, lo = a, a - b + 1
            off_hi = (hi - base_bit) if descending else (base_bit - hi)
            off_lo = (lo - base_bit) if descending else (base_bit - lo)
            out.append(f"{ind}rt.set_slot({slot}, S[{slot}].with_bits("
                       f"{max(off_hi, off_lo)}, {min(off_hi, off_lo)}, "
                       f"{vname}))")
            return
        if lhs.mode == ":":
            out.append(f"{ind}_wsel(rt, {slot}, ({msb}).to_int(), "
                       f"({lsb}).to_int(), {base_bit}, {descending!r}, "
                       f"{vname})")
            return
        ts = self._tmp()
        tw = self._tmp()
        out.append(f"{ind}{ts} = ({msb}).to_int()")
        out.append(f"{ind}{tw} = ({lsb}).to_int()")
        if lhs.mode == "+:":
            hi_e, lo_e = f"{ts} + {tw} - 1", ts
        else:
            hi_e, lo_e = ts, f"{ts} - {tw} + 1"
        out.append(f"{ind}_wsel(rt, {slot}, {hi_e}, {lo_e}, {base_bit}, "
                   f"{descending!r}, {vname})")

    def _concat_write(self, lhs: ast.Concat, scope: _Scope, vname: str,
                      out: list[str], ind: str) -> None:
        widths = [self.low._lvalue_width(p, scope) for p in lhs.parts]
        if any(w is None for w in widths):
            raise CompileUnsupported(
                "concatenation lvalue with non-static part widths")
        total = sum(widths)
        tmp = self._tmp()
        out.append(f"{ind}{tmp} = {vname}.resized({total})")
        offset = total
        for part, width in zip(lhs.parts, widths):
            offset -= width
            self._write_lines(
                part, scope,
                f"{tmp}.select_range({offset + width - 1}, {offset})",
                out, ind)

    def _writer_fn(self, lhs: ast.Expr, scope: _Scope) -> str:
        """Emit a module-level ``def _wN(rt, fr, value)`` writer (the
        function-object form NBA scheduling and continuous assigns
        need) and return its name."""
        body: list[str] = []
        self._write_lines(lhs, scope, "value", body, "    ")
        key = tuple(body)
        cached = self.writer_ix.get(key)
        if cached is not None:
            return cached
        self._counter += 1
        name = f"_w{self._counter}"
        lines = [f"def {name}(rt, fr, value):"]
        lines.extend(self._with_aliases(body, "    "))
        self.funcs.append("\n".join(lines))
        self.writer_ix[key] = name
        return name

    @staticmethod
    def _simple_target(code_lines: list[str]) -> bool:
        return len(code_lines) == 1

    # -- statements ------------------------------------------------------

    def _stmt(self, stmt, scope: _Scope, out: list[str], ind: str,
              coro: bool) -> None:
        """Emit one statement.  ``coro=True`` inside process bodies
        (suspension yields scheduler requests inline); ``coro=False``
        inside function bodies, where suspension is the interpreter's
        runtime error — both exactly as the closure backend routes
        them."""
        if stmt is None or isinstance(stmt, (ast.NullStmt, ast.Decl,
                                             ast.DisableStmt)):
            return
        if isinstance(stmt, ast.Block):
            for child in stmt.stmts:
                if not isinstance(child, ast.Decl):
                    self._stmt(child, scope, out, ind, coro)
            return
        if isinstance(stmt, ast.BlockingAssign):
            self._blocking(stmt, scope, out, ind, coro)
            return
        if isinstance(stmt, ast.NonBlockingAssign):
            self._nonblocking(stmt, scope, out, ind)
            return
        if isinstance(stmt, ast.IfStmt):
            self._if(stmt, scope, out, ind, coro)
            return
        if isinstance(stmt, ast.CaseStmt):
            self._case(stmt, scope, out, ind, coro)
            return
        if isinstance(stmt, ast.ForStmt):
            cost = self.low._loop_cost(stmt, scope)
            self._stmt(stmt.init, scope, out, ind, False)
            cond, _ = self._expr(stmt.cond, scope)
            out.append(f"{ind}while ({cond}).is_true:")
            body: list[str] = [f"{ind}    rt.charge({cost})"]
            self._stmt(stmt.body, scope, body, ind + "    ", coro)
            self._stmt(stmt.step, scope, body, ind + "    ", False)
            out.extend(body)
            return
        if isinstance(stmt, ast.WhileStmt):
            cost = self.low._loop_cost(stmt, scope)
            cond, _ = self._expr(stmt.cond, scope)
            out.append(f"{ind}while ({cond}).is_true:")
            body = [f"{ind}    rt.charge({cost})"]
            self._stmt(stmt.body, scope, body, ind + "    ", coro)
            out.extend(body)
            return
        if isinstance(stmt, ast.RepeatStmt):
            cost = self.low._loop_cost(stmt, scope)
            count, cconst = self._expr(stmt.count, scope)
            cval = self._const_of(count) if cconst else None
            if cval is not None:
                out.append(f"{ind}for _ in "
                           f"range({max(cval.to_int(), 0)}):")
            else:
                out.append(f"{ind}for _ in "
                           f"range(max(({count}).to_int(), 0)):")
            body = [f"{ind}    rt.charge({cost})"]
            self._stmt(stmt.body, scope, body, ind + "    ", coro)
            out.extend(body)
            return
        if isinstance(stmt, ast.ForeverStmt):
            cost = self.low._loop_cost(stmt, scope)
            out.append(f"{ind}while True:")
            body = [f"{ind}    rt.charge({cost})"]
            self._stmt(stmt.body, scope, body, ind + "    ", coro)
            out.extend(body)
            return
        if isinstance(stmt, ast.SysTaskCall):
            self._systask(stmt, scope, out, ind)
            return
        if isinstance(stmt, ast.TaskCall):
            out.append(ind + self._err(
                f"user task '{stmt.name}' is not supported"))
            return
        if isinstance(stmt, ast.DelayStmt):
            if not coro:
                out.append(ind + self._err(
                    "delay or event control inside a function"))
                return
            delay, dconst = self._expr(stmt.delay, scope)
            cval = self._const_of(delay) if dconst else None
            if cval is not None:
                req = self._qref(f'("delay", {cval.to_int()})')
                out.append(f"{ind}yield {req}")
            else:
                out.append(f'{ind}yield ("delay", ({delay}).to_int())')
            self._stmt(stmt.stmt, scope, out, ind, coro)
            return
        if isinstance(stmt, ast.EventControlStmt):
            if not coro:
                out.append(ind + self._err(
                    "delay or event control inside a function"))
                return
            spec = self.low._sens_entries(stmt.senslist, scope)
            req = self._qref(f'("wait", {self._wref(spec)})')
            out.append(f"{ind}yield {req}")
            self._stmt(stmt.stmt, scope, out, ind, coro)
            return
        if isinstance(stmt, ast.WaitStmt):
            if not coro:
                out.append(ind + self._err(
                    "delay or event control inside a function"))
                return
            cond, _ = self._expr(stmt.cond, scope)
            slots = self.low._expr_dep_slots(stmt.cond, scope)
            out.append(f"{ind}while not ({cond}).is_true:")
            if slots:
                spec = _WatchSpec(tuple((slot, None) for slot in slots),
                                  self.low.names, self.low.signals)
                req = self._qref(f'("wait", {self._wref(spec)})')
                out.append(f"{ind}    yield {req}")
            else:
                out.append(ind + "    " + self._err(
                    "wait() on constant expression"))
            self._stmt(stmt.stmt, scope, out, ind, coro)
            return
        out.append(ind + self._err(
            f"cannot execute statement {type(stmt).__name__}"))

    def _blocking(self, stmt: ast.BlockingAssign, scope: _Scope,
                  out: list[str], ind: str, coro: bool) -> None:
        rhs, _ = self._expr(stmt.rhs, scope)
        if stmt.delay is None:
            if self._const_of(rhs) is not None:
                # A pooled constant re-references freely and cannot
                # observe writer-index evaluation order — skip the temp.
                self._write_lines(stmt.lhs, scope, rhs, out, ind)
                return
            # Simple single-write targets inline the value expression;
            # complex targets evaluate the rhs into a temp *before* the
            # writer's own index expressions — closure evaluation order.
            lines: list[str] = []
            self._write_lines(stmt.lhs, scope, "\x00", lines, ind)
            if len(lines) == 1 and lines[0].count("\x00") == 1 \
                    and "_err(" not in lines[0]:
                out.append(lines[0].replace("\x00", f"({rhs})"))
                return
            tmp = self._tmp()
            out.append(f"{ind}{tmp} = {rhs}")
            self._write_lines(stmt.lhs, scope, tmp, out, ind)
            return
        delay, dconst = self._expr(stmt.delay, scope)
        if self._const_of(rhs) is not None:
            tmp = rhs
        else:
            tmp = self._tmp()
            out.append(f"{ind}{tmp} = {rhs}")
        dval = self._const_of(delay) if dconst else None
        if coro:
            if dval is not None:
                ticks_n = dval.to_int()
                if ticks_n:
                    req = self._qref(f'("delay", {ticks_n})')
                    out.append(f"{ind}yield {req}")
            else:
                ticks = self._tmp()
                out.append(f"{ind}{ticks} = ({delay}).to_int()")
                out.append(f"{ind}if {ticks}:")
                out.append(f'{ind}    yield ("delay", {ticks})')
        elif dval is not None:
            if dval.to_int():
                out.append(ind + self._err(
                    "delay or event control inside a function"))
        else:
            # Only reachable inside functions: a nonzero delay is the
            # interpreter's "delay inside a function" error.
            out.append(f"{ind}if ({delay}).to_int():")
            out.append(ind + "    " + self._err(
                "delay or event control inside a function"))
        self._write_lines(stmt.lhs, scope, tmp, out, ind)

    def _nonblocking(self, stmt: ast.NonBlockingAssign, scope: _Scope,
                     out: list[str], ind: str) -> None:
        rhs, _ = self._expr(stmt.rhs, scope)
        writer = self._writer_fn(stmt.lhs, scope)
        frname = "fr" if scope.locals is not None else "None"
        if stmt.delay is not None:
            delay, _ = self._expr(stmt.delay, scope)
            tmp = self._tmp()
            out.append(f"{ind}{tmp} = {rhs}")
            out.append(f"{ind}rt.schedule_nba(({delay}).to_int(), "
                       f"{writer}, {tmp}, {frname})")
            return
        out.append(f"{ind}rt._nba.append(({writer}, {rhs}, {frname}))")

    def _if(self, stmt: ast.IfStmt, scope: _Scope, out: list[str],
            ind: str, coro: bool) -> None:
        cond, _ = self._expr(stmt.cond, scope)
        then: list[str] = []
        self._stmt(stmt.then_stmt, scope, then, ind + "    ", coro)
        other: list[str] = []
        if stmt.else_stmt is not None:
            self._stmt(stmt.else_stmt, scope, other, ind + "    ", coro)
        if not then and not other:
            out.append(f"{ind}{self._tmp()} = {cond}")
            return
        if not then:
            # x condition runs the else branch, like the closure's
            # ``if .is_true: ... elif has_else: else``.
            out.append(f"{ind}if not ({cond}).is_true:")
            out.extend(other)
            return
        out.append(f"{ind}if ({cond}).is_true:")
        out.extend(then)
        if other:
            out.append(f"{ind}else:")
            out.extend(other)

    def _case(self, stmt: ast.CaseStmt, scope: _Scope, out: list[str],
              ind: str, coro: bool) -> None:
        selector, _ = self._expr(stmt.expr, scope)
        sel = self._tmp()
        out.append(f"{ind}{sel} = {selector}")
        arms: list[tuple[str, list[str]]] = []
        default: list[str] | None = None
        for item in stmt.items:
            body: list[str] = []
            self._stmt(item.stmt, scope, body, ind + "    ", coro)
            if not item.exprs:
                default = body         # later defaults win
                continue
            labels = [self._expr(e, scope)[0] for e in item.exprs]
            cond = " or ".join(f"_cm({stmt.kind!r}, {sel}, {lab})"
                               for lab in labels)
            arms.append((cond, body))
        first = True
        for cond, body in arms:
            out.append(f"{ind}{'if' if first else 'elif'} {cond}:")
            out.extend(body or [f"{ind}    pass"])
            first = False
        if default:
            if first:
                out.extend(line[4:] for line in default)
            else:
                out.append(f"{ind}else:")
                out.extend(default)

    # -- $display and friends --------------------------------------------

    def _systask(self, stmt: ast.SysTaskCall, scope: _Scope,
                 out: list[str], ind: str) -> None:
        name = stmt.name
        if name in _DISPLAY:
            prefix = "ERROR: " if name == "$error" else ""
            text = self._display_code(stmt.args, scope, prefix)
            out.append(f"{ind}rt.display_lines.append({text})")
            return
        if name in ("$finish", "$stop", "$fatal"):
            out.append(f"{ind}rt.finished = True")
            out.append(f"{ind}raise _Finish()")
            return
        if name == "$dumpfile":
            filename = "dump.vcd"
            if stmt.args and isinstance(stmt.args[0], ast.StringLiteral):
                filename = stmt.args[0].value
            out.append(f"{ind}rt.enable_tracing({filename!r})"
                       f".enabled = False")
            return
        if name == "$dumpvars":
            tmp = self._tmp()
            out.append(f"{ind}{tmp} = rt.enable_tracing("
                       f'rt.tracer.filename if rt.tracer else "dump.vcd")')
            out.append(f"{ind}{tmp}.enabled = True")
            out.append(f"{ind}rt.snapshot_tracer()")
            return
        if name == "$dumpon":
            out.append(f"{ind}if rt.tracer is not None:")
            out.append(f"{ind}    rt.tracer.enabled = True")
            return
        if name == "$dumpoff":
            out.append(f"{ind}if rt.tracer is not None:")
            out.append(f"{ind}    rt.tracer.enabled = False")
            return
        if name in ("$timeformat", "$readmemh", "$readmemb"):
            return   # accepted and ignored
        out.append(ind + self._err(f"unsupported system task '{name}'"))

    def _display_code(self, args, scope: _Scope, prefix: str) -> str:
        """One expression producing the rendered display line."""
        if not args:
            return repr(prefix)
        first = args[0]
        if not isinstance(first, ast.StringLiteral):
            # No leading format string: space-joined "d"-format
            # rendering, string literal args passed through verbatim.
            pieces: list[str] = []
            for arg in args:
                if isinstance(arg, ast.StringLiteral):
                    pieces.append(repr(arg.value))
                else:
                    code, _ = self._expr(arg, scope)
                    pieces.append(f'_fv({code}, "d")')
            joined = pieces[0] if len(pieces) == 1 \
                else '" ".join((' + ", ".join(pieces) + "))"
            return f"{prefix!r} + {joined}" if prefix else joined
        arg_iter = iter(args[1:])
        mod_text = scope_name(scope.prefix, self.design.top)
        parts: list[str] = []       # alternating literals / expr codes
        literal = prefix

        def flush():
            nonlocal literal
            if literal:
                parts.append(repr(literal))
                literal = ""

        for segment in parse_template(first.value):
            kind = segment[0]
            if kind == "lit":
                literal += segment[1]
            elif kind == "pct":
                literal += "%"
            elif kind == "mod":
                literal += mod_text
            else:
                spec = segment[1]
                try:
                    arg = next(arg_iter)
                except StopIteration:
                    literal += "%" + spec
                    continue
                if spec == "s" and isinstance(arg, ast.StringLiteral):
                    literal += arg.value
                    continue
                code, _ = self._expr(arg, scope)
                flush()
                parts.append(f"_rs({spec!r}, {code})")
        flush()
        return " + ".join(parts) if parts else repr(prefix)

    # -- processes -------------------------------------------------------

    def emit_proc(self, proc) -> None:
        """Lower one elaborated process into module-level defs plus a
        construction expression — the codegen twin of the closure
        lowerer's ``lower_proc``."""
        self.stats["procs"] += 1
        low = self.low
        if proc.kind == "assign":
            rhs_scope = _Scope(low, proc.rhs_prefix, proc.module)
            lhs_scope = _Scope(low, proc.lhs_prefix, proc.module)
            rhs, _ = self._expr(proc.rhs, rhs_scope)
            self._counter += 1
            name = f"_a{self._counter}"
            lines = [f"def {name}(rt, fr):"]
            lines.extend(self._with_aliases([f"    return {rhs}"],
                                            "    "))
            self.funcs.append("\n".join(lines))
            writer = self._writer_fn(proc.lhs, lhs_scope)
            deps = tuple(low._expr_dep_slots(proc.rhs, rhs_scope))
            cost = 1 + low._expr_cost(proc.rhs, rhs_scope)
            self.stats["assigns"] += 1
            self.proc_entries.append(
                f"_CAssign(rhs={name}, writer={writer}, "
                f"deps={deps!r}, label={proc.label!r}, cost={cost})")
            return
        scope = _Scope(low, proc.prefix, proc.module)
        if proc.kind == "initial":
            self._coroutine_proc(proc, proc.body, scope)
            return
        body_ast = proc.body
        if isinstance(body_ast, ast.EventControlStmt):
            senslist = body_ast.senslist
            if senslist.is_star:
                spec = low._star_entries(body_ast, scope)
            else:
                spec = low._sens_entries(senslist, scope)
            wref = self._wref(spec)
            body_cost = low._stmt_cost(body_ast.stmt, scope) \
                if body_ast.stmt is not None else 1
            if body_ast.stmt is None \
                    or not self._needs_coroutine(body_ast.stmt):
                body: list[str] = []
                if body_ast.stmt is not None:
                    self._stmt(body_ast.stmt, scope, body, "    ",
                               coro=False)
                self._counter += 1
                name = f"_p{self._counter}"
                lines = [f"def {name}(rt, fr):"]
                lines.extend(self._with_aliases(body, "    "))
                self.funcs.append("\n".join(lines))
                self.stats["reactive"] += 1
                self.proc_entries.append(
                    f"_CReactive(body={name}, entries={wref}, "
                    f"label={proc.label!r}, cost={1 + body_cost})")
                return
            # always @(...) with suspension in the body: one generator
            # per process — wait, run body inline, charge — no nested
            # yield-from chains anywhere in the generated code.
            req = self._qref(f'("wait", {wref})')
            inner: list[str] = [f"            yield {req}"]
            self._stmt(body_ast.stmt, scope, inner, "            ",
                       coro=True)
            inner.append(f"            rt.charge({50 + body_cost})")
            self._counter += 1
            name = f"_p{self._counter}"
            merged = self._with_aliases(inner, "    ")
            n_alias = len(merged) - len(inner)
            lines = [f"def {name}(rt):"]
            lines.extend(merged[:n_alias])
            lines.append("    try:")
            lines.append("        while True:")
            lines.extend(merged[n_alias:])
            lines.append("    except _Finish:")
            lines.append("        pass")
            self.funcs.append("\n".join(lines))
            self.stats["coroutines"] += 1
            self.proc_entries.append(
                f"_CCoroutine(genfunc={name}, label={proc.label!r})")
            return
        # always without a top event control: loop the body forever.
        loop_cost = 50 + low._stmt_cost(body_ast, scope)
        inner = []
        if body_ast is not None:
            self._stmt(body_ast, scope, inner, "            ",
                       coro=True)
        inner.append(f"            rt.charge_always({loop_cost})")
        self._counter += 1
        name = f"_p{self._counter}"
        merged = self._with_aliases(inner, "    ")
        n_alias = len(merged) - len(inner)
        lines = [f"def {name}(rt):"]
        lines.extend(merged[:n_alias])
        lines.append("    try:")
        lines.append("        while True:")
        lines.extend(merged[n_alias:])
        lines.append("    except _Finish:")
        lines.append("        pass")
        lines.append("    return")
        lines.append("    yield None")
        self.funcs.append("\n".join(lines))
        self.stats["coroutines"] += 1
        self.proc_entries.append(
            f"_CCoroutine(genfunc={name}, label={proc.label!r})")

    def _coroutine_proc(self, proc, body_ast, scope: _Scope) -> None:
        """Emit an ``initial`` process: run-once generator with the
        closure backend's _Finish wrapping."""
        body: list[str] = []
        if body_ast is not None:
            self._stmt(body_ast, scope, body, "        ", coro=True)
        if not body:
            body = ["        pass"]
        self._counter += 1
        name = f"_p{self._counter}"
        merged = self._with_aliases(body, "    ")
        n_alias = len(merged) - len(body)
        lines = [f"def {name}(rt):"]
        lines.extend(merged[:n_alias])
        lines.append("    try:")
        lines.extend(merged[n_alias:])
        lines.append("    except _Finish:")
        lines.append("        pass")
        lines.append("    return")
        lines.append("    yield None")
        self.funcs.append("\n".join(lines))
        self.stats["coroutines"] += 1
        self.proc_entries.append(
            f"_CCoroutine(genfunc={name}, label={proc.label!r})")

    # -- module assembly -------------------------------------------------

    def render(self, digest: str) -> str:
        """Assemble the generated module source."""
        design = self.design
        sig_rows = []
        for name in self.low.names:
            signal = design.signals[name]
            value = signal.value
            sig_rows.append(
                f"    ({name!r}, {signal.width}, {signal.kind!r}, "
                f"{signal.signed!r}, {signal.msb}, {signal.lsb}, "
                f"{signal.array_lo!r}, {signal.array_hi!r}, "
                f"{value.width}, {value.val}, {value.xz}),")
        pool_rows = [f"    V.Value({v.width}, {v.val}, {v.xz}),"
                     for v in self.pool]
        watch_rows = [f"    {entries!r},"
                      for entries in self.watch_entries]
        req_rows = [f"    {code}," for code in self.req_entries]
        proc_rows = [f"    {entry}," for entry in self.proc_entries]
        parts = [
            f'"""Generated by repro.sim.codegen v{SIM_CODEGEN_VERSION}'
            ' — do not edit."""',
            "",
            "from repro.sim import values as V",
            "from repro.sim.compile import (_CAssign, _CCoroutine,"
            " _CReactive,",
            "    _WatchSpec, CompiledDesign, _case_match as _cm)",
            "from repro.sim.codegen import (_rt_err as _err,"
            " _rt_rand as _rand,",
            "    _rt_neg as _neg, _rt_xmerge as _xm,"
            " _rt_clog2 as _clog2,",
            "    _rt_replc as _replc, _rt_psel as _psel,"
            " _rt_pselg as _pselg,",
            "    _rt_ipsel as _ipsel, _rt_ipselg as _ipselg,"
            " _rt_wsel as _wsel)",
            "from repro.sim.elaborate import Design, Signal",
            "from repro.sim.engine import _Finish",
            "from repro.sim.format import render_spec as _rs",
            "from repro.sim.values import format_value as _fv",
            "",
            f"TOP = {design.top!r}",
            f"DIGEST = {digest!r}",
            "",
            "_signals = {}",
            "for _row in (",
            *sig_rows,
            "):",
            "    _signals[_row[0]] = Signal(",
            "        name=_row[0], width=_row[1], kind=_row[2],",
            "        signed=_row[3], msb=_row[4], lsb=_row[5],",
            "        array_lo=_row[6], array_hi=_row[7],",
            "        value=V.Value(_row[8], _row[9], _row[10]))",
            "_names = list(_signals)",
            "_slots = {_n: _i for _i, _n in enumerate(_names)}",
            "_sigs = [_signals[_n] for _n in _names]",
            "_design = Design(top=TOP, signals=_signals)",
            "",
            "K = (",
            *pool_rows,
            ")",
            "W = tuple(_WatchSpec(_e, _names, _sigs) for _e in (",
            *watch_rows,
            "))",
            "Q = (",
            *req_rows,
            ")",
            "",
            *self.funcs,
            "",
            "_procs = [",
            *proc_rows,
            "]",
            "_i = 0",
            "for _p in _procs:",
            "    if type(_p) is _CAssign:",
            "        _p.index = _i",
            "        _i += 1",
            "",
            f"STATS = {self.stats!r}",
            "",
            "_compiled = CompiledDesign(",
            "    design=_design, top=TOP, names=_names, slots=_slots,",
            "    init_store=[_s.value for _s in _sigs],",
            "    array_slots=tuple(_i for _i, _s in enumerate(_sigs)",
            "                      if _s.is_array),",
            "    procs=_procs, stats=dict(STATS))",
            "",
            "",
            "def build():",
            "    return _compiled",
        ]
        text = "\n".join(parts) + "\n"
        if len(text) > _MAX_MODULE_CHARS:
            raise CodegenUnsupported("generated module too large")
        return text


def generate_module(design: Design, digest: str) -> str:
    """Lower ``design`` once into importable Python module source.

    Raises :class:`CompileUnsupported` for constructs the closure
    backend also refuses (shared verdict), :class:`CodegenUnsupported`
    for codegen-only limits (size guards), and counts one compile in
    :func:`backend_stats` on success — loading the persisted source
    later does *not* count as a compile.
    """
    emit = _Emit(design)
    for proc in design.procs:
        emit.emit_proc(proc)
    text = emit.render(digest)
    try:
        compile(text, f"<codegen {digest[:12]}>", "exec")
    except SyntaxError as exc:   # pragma: no cover - emitter bug guard
        raise CodegenUnsupported(
            f"generated module failed to compile: {exc}") from None
    backend_stats().compiles += 1
    return text
