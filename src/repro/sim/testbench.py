"""High-level simulation entry points (the `vcs && ./simv` equivalent).

The benchmark suites use self-checking testbenches that print
``PASS``/``FAIL`` lines and call ``$finish``; :func:`run_testbench` runs one
and summarises the outcome.

Three backends sit behind :func:`run_simulation`:

* ``"compiled"`` (the default) — :mod:`repro.sim.compile` lowers the
  design once into closures, cached by source digest in the process-wide
  :class:`~repro.sim.compile.CompiledDesignCache` so repeated runs of
  the same testbench/reference pair skip parse, elaborate *and* lower;
* ``"codegen"`` — :mod:`repro.sim.codegen` emits an importable Python
  *module source* per design.  Same runtime contract and cache as
  ``"compiled"``, plus a persistent generated-source layer: any warm
  process (pool worker, daemon thread, fresh interpreter) ``exec``\\ s
  the cached module instead of re-lowering — zero compiles in a warm
  fleet;
* ``"interp"`` — the reference tree-walking interpreter
  (:class:`~repro.sim.engine.Simulator`).

A design the lowerer cannot handle falls back to the interpreter
automatically; fallbacks are counted in
:func:`repro.sim.compile.backend_stats` and the two backends are proven
output-identical by ``tests/test_sim_differential.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..verilog import ast, parse
from ..verilog.errors import VerilogError
from .compile import (CompileUnsupported, backend_stats, compile_design,
                      design_cache, source_digest)
from .elaborate import elaborate
from .engine import SimulationError, SimulationTimeout, Simulator

#: Backend used when callers don't pass one explicitly.
DEFAULT_BACKEND = "compiled"

BACKENDS = ("compiled", "codegen", "interp")


@dataclass
class SimResult:
    """Outcome of one simulation run."""

    ok: bool                       # simulated without tool errors
    finished: bool = False         # reached $finish
    time: int = 0
    display: list[str] = field(default_factory=list)
    error: str | None = None
    vcd: str | None = None         # VCD text when tracing was on

    @property
    def output(self) -> str:
        return "\n".join(self.display)


@dataclass
class TestbenchVerdict:
    """PASS/FAIL accounting extracted from a self-checking testbench."""

    ok: bool                       # ran to completion
    passed: int = 0
    failed: int = 0
    error: str | None = None

    @property
    def all_passed(self) -> bool:
        return self.ok and self.failed == 0 and self.passed > 0

    @property
    def pass_fraction(self) -> float:
        total = self.passed + self.failed
        if not self.ok or total == 0:
            return 0.0
        return self.passed / total


def find_top(source: ast.SourceFile) -> str:
    """Choose the root module: not instantiated anywhere, tb-names first."""
    instantiated: set[str] = set()
    for module in source.modules:
        for item in module.items_of_type(ast.Instantiation):
            instantiated.add(item.module)
    roots = [m.name for m in source.modules if m.name not in instantiated]
    if not roots:
        roots = [m.name for m in source.modules]
    for name in roots:
        lowered = name.lower()
        if lowered.startswith(("tb", "testbench", "test_")) or \
                lowered.endswith(("_tb", "_testbench", "_test")):
            return name
    return roots[0]


def _resolve_backend(backend: str | None) -> str:
    chosen = backend or DEFAULT_BACKEND
    if chosen not in BACKENDS:
        raise ValueError(f"unknown sim backend '{chosen}' "
                         f"(expected one of {', '.join(BACKENDS)})")
    return chosen


def _finish_result(simulator) -> SimResult:
    vcd_text = simulator.tracer.to_vcd() if simulator.tracer else None
    return SimResult(ok=True, finished=simulator.finished,
                     time=simulator.time,
                     display=simulator.display_lines, vcd=vcd_text)


def _run_interp(source_text: str, top: str | None, max_time: int,
                filename: str, trace: bool,
                tree: ast.SourceFile | None = None) -> SimResult:
    try:
        source = tree if tree is not None else parse(source_text,
                                                     filename)
        top_name = top or find_top(source)
        design = elaborate(source, top_name)
        simulator = Simulator(design)
        if trace:
            simulator.enable_tracing()
        simulator.run(max_time=max_time)
    except (VerilogError, SimulationError) as exc:
        return SimResult(ok=False, error=str(exc))
    except RecursionError:
        return SimResult(ok=False, error="elaboration recursion overflow")
    return _finish_result(simulator)


def _run_compiled(source_text: str, top: str | None, max_time: int,
                  filename: str, trace: bool,
                  tree: ast.SourceFile | None = None) -> SimResult | None:
    """Run on the compiled backend; returns None to request fallback."""
    stats = backend_stats()
    cache = design_cache()      # bound once: a concurrent reconfigure
    digest = source_digest(source_text, top)   # cannot swap it mid-run
    compiled = cache.get(digest)
    try:
        if compiled is None:
            verdict = cache.verdict(digest)
            if verdict is not None and not verdict.get("supported"):
                stats.record_fallback(
                    verdict.get("reason") or "unsupported construct")
                return None
            source = tree if tree is not None else parse(source_text,
                                                         filename)
            top_name = top or find_top(source)
            design = elaborate(source, top_name)
            compiled = compile_design(design)
            cache.put(digest, compiled)
        else:
            stats.cache_hits += 1
    except CompileUnsupported as exc:
        cache.record_unsupported(digest, str(exc))
        stats.record_fallback(str(exc))
        return None
    except (VerilogError, SimulationError) as exc:
        return SimResult(ok=False, error=str(exc))
    except RecursionError:
        return SimResult(ok=False, error="elaboration recursion overflow")
    # Counted once the design is in hand — like interp_runs, errored
    # simulations still count as runs on this backend.
    stats.compiled_runs += 1
    try:
        simulator = compiled.simulator()
        if trace:
            simulator.enable_tracing()
        simulator.run(max_time=max_time)
    except SimulationTimeout:
        # Step budgets are charged differently by the two runtimes, so
        # a timeout verdict near the budget boundary could diverge.
        # The interpreter is authoritative: re-run there so the final
        # outcome is identical across backends (and across the shared
        # eval cell cache).  Keyed under a stable reason — the message
        # embeds per-design details and would never aggregate.
        stats.compiled_runs -= 1
        stats.record_fallback("timeout")
        return None
    except (VerilogError, SimulationError) as exc:
        return SimResult(ok=False, error=str(exc))
    except RecursionError:
        return SimResult(ok=False, error="elaboration recursion overflow")
    return _finish_result(simulator)


def _run_codegen(source_text: str, top: str | None, max_time: int,
                 filename: str, trace: bool,
                 tree: ast.SourceFile | None = None) -> SimResult | None:
    """Run on the codegen backend; returns None to request fallback.

    Artefact resolution is three-layered: in-memory LRU of loaded
    modules → persistent generated-source files (any process with a
    warm disk cache ``exec``\\ s instead of re-lowering — ``compiles``
    stays 0) → generate from the elaborated design and persist.
    """
    from .codegen import (CodegenUnsupported, codegen_key,
                          generate_module, load_generated)
    stats = backend_stats()
    cache = design_cache()      # bound once per run (atomic swap safe)
    digest = source_digest(source_text, top)
    compiled = cache.get_codegen(digest)
    try:
        if compiled is None:
            reason = cache.codegen_unsupported(digest)
            if reason is not None:
                stats.record_fallback(reason)
                return None
            verdict = cache.verdict(digest)
            if verdict is not None and not verdict.get("supported"):
                stats.record_fallback(
                    verdict.get("reason") or "unsupported construct")
                return None
            key = codegen_key(digest)
            gen_source = cache.gen_source(digest, key)
            if gen_source is not None:
                stats.codegen_hits += 1
            else:
                stats.codegen_misses += 1
                source = tree if tree is not None else \
                    parse(source_text, filename)
                top_name = top or find_top(source)
                design = elaborate(source, top_name)
                gen_source = generate_module(design, digest)
                cache.put_gen_source(digest, key, gen_source)
            compiled = load_generated(gen_source)
            cache.put_codegen(digest, compiled)
        else:
            stats.cache_hits += 1
    except CodegenUnsupported as exc:
        # Emit-only limit: the closure lowerer may still support this
        # design, so the verdict never reaches the shared persistent
        # layer — it is memoised in-process only.
        cache.record_codegen_unsupported(digest, str(exc))
        stats.record_fallback(str(exc))
        return None
    except CompileUnsupported as exc:
        cache.record_unsupported(digest, str(exc))
        stats.record_fallback(str(exc))
        return None
    except (VerilogError, SimulationError) as exc:
        return SimResult(ok=False, error=str(exc))
    except RecursionError:
        return SimResult(ok=False, error="elaboration recursion overflow")
    stats.compiled_runs += 1
    try:
        simulator = compiled.simulator()
        if trace:
            simulator.enable_tracing()
        simulator.run(max_time=max_time)
    except SimulationTimeout:
        # Same rule as the closure backend: the interpreter is
        # authoritative at the step-budget boundary.
        stats.compiled_runs -= 1
        stats.record_fallback("timeout")
        return None
    except (VerilogError, SimulationError) as exc:
        return SimResult(ok=False, error=str(exc))
    except RecursionError:
        return SimResult(ok=False, error="elaboration recursion overflow")
    return _finish_result(simulator)


def run_simulation(source_text: str, top: str | None = None,
                   max_time: int = 2_000_000,
                   filename: str = "<sim>",
                   trace: bool = False,
                   backend: str | None = None) -> SimResult:
    """Parse, elaborate and simulate; never raises on design errors.

    ``backend`` selects ``"compiled"`` (default), ``"codegen"`` (both
    fall back to the interpreter on unsupported constructs) or
    ``"interp"``.  With ``trace=True`` (or when the testbench calls
    ``$dumpfile``/``$dumpvars``) the result carries the VCD text.
    """
    chosen = _resolve_backend(backend)
    if chosen == "compiled":
        result = _run_compiled(source_text, top, max_time, filename,
                               trace)
        if result is not None:
            return result
        # Unsupported construct: fall through to the interpreter.
    elif chosen == "codegen":
        result = _run_codegen(source_text, top, max_time, filename,
                              trace)
        if result is not None:
            return result
    else:
        backend_stats().interp_runs += 1
    return _run_interp(source_text, top, max_time, filename, trace)


def _verdict_of(result: SimResult) -> TestbenchVerdict:
    """PASS/FAIL accounting over one simulation's display transcript."""
    if not result.ok:
        return TestbenchVerdict(ok=False, error=result.error)
    passed = failed = 0
    for line in result.display:
        upper = line.upper()
        if "FAIL" in upper or "MISMATCH" in upper or "ERROR" in upper:
            failed += 1
        elif "PASS" in upper or " OK" in upper or upper.startswith("OK"):
            passed += 1
    if not result.finished and passed + failed == 0:
        return TestbenchVerdict(ok=False,
                                error="testbench did not reach $finish")
    return TestbenchVerdict(ok=True, passed=passed, failed=failed)


def run_testbench(design_text: str, testbench_text: str,
                  top: str | None = None,
                  max_time: int = 2_000_000,
                  backend: str | None = None) -> TestbenchVerdict:
    """Simulate design+testbench and count PASS/FAIL lines.

    A testbench reports vectors via ``$display``; any line containing
    ``FAIL``/``ERROR`` (or ``MISMATCH``) counts as a failed check, any line
    containing ``PASS``/``OK`` as a passed one.
    """
    result = run_simulation(design_text + "\n" + testbench_text, top=top,
                            max_time=max_time, backend=backend)
    return _verdict_of(result)


def run_testbench_batch(design_texts: list[str], testbench_text: str,
                        top: str | None = None,
                        max_time: int = 2_000_000,
                        backend: str | None = None
                        ) -> list[TestbenchVerdict]:
    """Score many candidate designs against one shared testbench.

    Evaluation's dominant pattern — N sampled candidates × one bench —
    pays the bench parse exactly once here: the bench module list is
    parsed up front and grafted onto each candidate's parse tree, so
    per-candidate work on a cache miss is candidate-parse + elaborate
    + lower only, and on a warm compiled/codegen cache it is zero
    front-end work.  Verdicts (and backend cache keys) are identical
    to N separate :func:`run_testbench` calls on the concatenated
    sources — the batched and unbatched paths share one digest space.
    """
    try:
        bench_tree = parse(testbench_text, "<bench>")
    except VerilogError as exc:
        error = TestbenchVerdict(ok=False, error=str(exc))
        return [error] * len(design_texts)
    chosen = _resolve_backend(backend)
    verdicts: list[TestbenchVerdict] = []
    bench_modules = list(bench_tree.modules)
    for text in design_texts:
        merged_text = text + "\n" + testbench_text
        try:
            cand_tree = parse(text, "<candidate>")
        except VerilogError as exc:
            verdicts.append(TestbenchVerdict(ok=False, error=str(exc)))
            continue
        merged = ast.SourceFile(
            modules=list(cand_tree.modules) + bench_modules)
        result = None
        if chosen == "compiled":
            result = _run_compiled(merged_text, top, max_time, "<sim>",
                                   False, tree=merged)
        elif chosen == "codegen":
            result = _run_codegen(merged_text, top, max_time, "<sim>",
                                  False, tree=merged)
        else:
            backend_stats().interp_runs += 1
        if result is None:
            result = _run_interp(merged_text, top, max_time, "<sim>",
                                 False, tree=merged)
        verdicts.append(_verdict_of(result))
    return verdicts
