"""High-level simulation entry points (the `vcs && ./simv` equivalent).

The benchmark suites use self-checking testbenches that print
``PASS``/``FAIL`` lines and call ``$finish``; :func:`run_testbench` runs one
and summarises the outcome.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..verilog import ast, parse
from ..verilog.errors import VerilogError
from .elaborate import elaborate
from .engine import SimulationError, Simulator


@dataclass
class SimResult:
    """Outcome of one simulation run."""

    ok: bool                       # simulated without tool errors
    finished: bool = False         # reached $finish
    time: int = 0
    display: list[str] = field(default_factory=list)
    error: str | None = None
    vcd: str | None = None         # VCD text when tracing was on

    @property
    def output(self) -> str:
        return "\n".join(self.display)


@dataclass
class TestbenchVerdict:
    """PASS/FAIL accounting extracted from a self-checking testbench."""

    ok: bool                       # ran to completion
    passed: int = 0
    failed: int = 0
    error: str | None = None

    @property
    def all_passed(self) -> bool:
        return self.ok and self.failed == 0 and self.passed > 0

    @property
    def pass_fraction(self) -> float:
        total = self.passed + self.failed
        if not self.ok or total == 0:
            return 0.0
        return self.passed / total


def find_top(source: ast.SourceFile) -> str:
    """Choose the root module: not instantiated anywhere, tb-names first."""
    instantiated: set[str] = set()
    for module in source.modules:
        for item in module.items_of_type(ast.Instantiation):
            instantiated.add(item.module)
    roots = [m.name for m in source.modules if m.name not in instantiated]
    if not roots:
        roots = [m.name for m in source.modules]
    for name in roots:
        lowered = name.lower()
        if lowered.startswith(("tb", "testbench", "test_")) or \
                lowered.endswith(("_tb", "_testbench", "_test")):
            return name
    return roots[0]


def run_simulation(source_text: str, top: str | None = None,
                   max_time: int = 2_000_000,
                   filename: str = "<sim>",
                   trace: bool = False) -> SimResult:
    """Parse, elaborate and simulate; never raises on design errors.

    With ``trace=True`` (or when the testbench calls
    ``$dumpfile``/``$dumpvars``) the result carries the VCD text.
    """
    try:
        source = parse(source_text, filename)
        top_name = top or find_top(source)
        design = elaborate(source, top_name)
        simulator = Simulator(design)
        if trace:
            simulator.enable_tracing()
        simulator.run(max_time=max_time)
    except (VerilogError, SimulationError) as exc:
        return SimResult(ok=False, error=str(exc))
    except RecursionError:
        return SimResult(ok=False, error="elaboration recursion overflow")
    vcd_text = simulator.tracer.to_vcd() if simulator.tracer else None
    return SimResult(ok=True, finished=simulator.finished,
                     time=simulator.time, display=simulator.display_lines,
                     vcd=vcd_text)


def run_testbench(design_text: str, testbench_text: str,
                  top: str | None = None,
                  max_time: int = 2_000_000) -> TestbenchVerdict:
    """Simulate design+testbench and count PASS/FAIL lines.

    A testbench reports vectors via ``$display``; any line containing
    ``FAIL``/``ERROR`` (or ``MISMATCH``) counts as a failed check, any line
    containing ``PASS``/``OK`` as a passed one.
    """
    result = run_simulation(design_text + "\n" + testbench_text, top=top,
                            max_time=max_time)
    if not result.ok:
        return TestbenchVerdict(ok=False, error=result.error)
    passed = failed = 0
    for line in result.display:
        upper = line.upper()
        if "FAIL" in upper or "MISMATCH" in upper or "ERROR" in upper:
            failed += 1
        elif "PASS" in upper or " OK" in upper or upper.startswith("OK"):
            passed += 1
    if not result.finished and passed + failed == 0:
        return TestbenchVerdict(ok=False,
                                error="testbench did not reach $finish")
    return TestbenchVerdict(ok=True, passed=passed, failed=failed)
