"""Event-driven Verilog simulator (the paper's VCS substitute).

Public API:

* :func:`run_simulation` — parse + elaborate + simulate a source string;
* :func:`run_testbench` — simulate design + self-checking testbench and
  count PASS/FAIL vectors;
* :class:`Value` — four-state bit-vector values;
* :func:`elaborate` / :class:`Simulator` — the lower-level pieces.
"""

from .elaborate import Design, ElaborationError, Signal, elaborate
from .engine import SimulationError, SimulationTimeout, Simulator
from .testbench import (SimResult, TestbenchVerdict, find_top,
                        run_simulation, run_testbench)
from .values import Value, from_literal
from .vcd import Tracer

__all__ = [
    "Value", "from_literal", "elaborate", "Design", "Signal",
    "Simulator", "SimulationError", "SimulationTimeout",
    "ElaborationError", "run_simulation", "run_testbench", "find_top",
    "SimResult", "TestbenchVerdict", "Tracer",
]
