"""Event-driven Verilog simulator (the paper's VCS substitute).

Public API:

* :func:`run_simulation` — parse + elaborate + simulate a source string
  (``backend="compiled"|"codegen"|"interp"``; compiled is the default
  and both compiling backends fall back to the interpreter on
  unsupported constructs);
* :func:`run_testbench` — simulate design + self-checking testbench and
  count PASS/FAIL vectors; :func:`run_testbench_batch` scores many
  candidates against one shared (parsed-once) testbench;
* :class:`Value` — four-state bit-vector values;
* :func:`elaborate` / :class:`Simulator` — the interpreter pieces;
* :func:`compile_design` / :class:`CompiledSimulator` — the compiling
  backend (see :mod:`repro.sim.compile`);
* :func:`generate_module` / :func:`load_generated` — the codegen
  backend's source emitter and loader (see :mod:`repro.sim.codegen`).
"""

from .codegen import (SIM_CODEGEN_VERSION, CodegenUnsupported,
                      codegen_key, generate_module, load_generated)
from .compile import (SIM_COMPILE_VERSION, BackendStats,
                      CompiledDesign, CompiledDesignCache,
                      CompiledSimulator, CompileUnsupported,
                      backend_stats, compile_design,
                      configure_design_cache, design_cache,
                      reset_backend_stats, source_digest)
from .elaborate import Design, ElaborationError, Signal, elaborate
from .engine import SimulationError, SimulationTimeout, Simulator
from .testbench import (BACKENDS, DEFAULT_BACKEND, SimResult,
                        TestbenchVerdict, find_top, run_simulation,
                        run_testbench, run_testbench_batch)
from .values import Value, from_literal
from .vcd import Tracer

__all__ = [
    "Value", "from_literal", "elaborate", "Design", "Signal",
    "Simulator", "SimulationError", "SimulationTimeout",
    "ElaborationError", "run_simulation", "run_testbench",
    "run_testbench_batch", "find_top",
    "SimResult", "TestbenchVerdict", "Tracer",
    "BACKENDS", "DEFAULT_BACKEND", "SIM_COMPILE_VERSION",
    "SIM_CODEGEN_VERSION", "BackendStats", "CompileUnsupported",
    "CodegenUnsupported", "CompiledDesign",
    "CompiledDesignCache", "CompiledSimulator", "backend_stats",
    "codegen_key", "compile_design", "configure_design_cache",
    "design_cache", "generate_module", "load_generated",
    "reset_backend_stats", "source_digest",
]
