"""Shared $display formatting and edge semantics for both sim backends.

The interpreter (:mod:`repro.sim.engine`) and the compiling backend
(:mod:`repro.sim.compile`) must produce byte-identical ``$display``
transcripts — the differential fuzz harness asserts it — so the format
template parsing and per-spec value rendering live here, once.  The
backends differ only in *how* they obtain the argument values (AST
evaluation vs compiled closures); everything downstream of that is this
module.

:func:`edge_fired` is likewise shared: the compiled backend checks edges
at the write site with (old, new) pairs while the interpreter re-evaluates
sensitivity expressions, and both must agree bit-for-bit on what counts
as a posedge/negedge (including the x transitions).
"""

from __future__ import annotations

from . import values as V

#: Template segments produced by :func:`parse_template`:
#: ``("lit", text)`` literal text, ``("pct",)`` a literal percent,
#: ``("mod",)`` the %m scope spec, ``("spec", ch)`` a value spec.
Segment = tuple


def parse_template(template: str) -> list[Segment]:
    """Split a $display format string into renderable segments.

    Mirrors the escape subset the simulator supports: ``\\n``/``\\t``
    escapes, ``%[0][width]spec`` specifiers, ``%%`` and ``%m``.
    """
    segments: list[Segment] = []
    lit: list[str] = []
    i = 0
    while i < len(template):
        ch = template[i]
        if ch != "%":
            if ch == "\\":
                nxt = template[i + 1] if i + 1 < len(template) else ""
                if nxt == "n":
                    lit.append("\n")
                    i += 2
                    continue
                if nxt == "t":
                    lit.append("\t")
                    i += 2
                    continue
            lit.append(ch)
            i += 1
            continue
        # parse %[0][width]spec — width digits are accepted and ignored,
        # matching the interpreter's historical behaviour.
        j = i + 1
        while j < len(template) and template[j].isdigit():
            j += 1
        spec = template[j] if j < len(template) else "%"
        i = j + 1
        if lit:
            segments.append(("lit", "".join(lit)))
            lit = []
        if spec == "%":
            segments.append(("pct",))
        elif spec == "m":
            segments.append(("mod",))
        else:
            segments.append(("spec", spec))
    if lit:
        segments.append(("lit", "".join(lit)))
    return segments


def render_spec(spec: str, value: V.Value) -> str:
    """Render one evaluated argument for a value spec character."""
    if spec == "t":
        return str(value.to_int())
    if spec in ("d", "b", "h", "x", "o"):
        return V.format_value(value, "h" if spec == "x" else spec)
    if spec == "c":
        return chr(value.to_int() & 0xFF)
    if spec == "s":
        raw = value.to_int()
        chars = []
        while raw:
            chars.append(chr(raw & 0xFF))
            raw >>= 8
        return "".join(reversed(chars))
    return V.format_value(value, "d")


def scope_name(prefix: str, top: str) -> str:
    """The %m rendering: the process scope, or the top module at root."""
    return prefix.rstrip(".") or top


def edge_fired(edge: str | None, prev: V.Value, new: V.Value) -> bool:
    """IEEE 1364 edge detection over 4-state values.

    ``None`` is a level (any-change) trigger; x transitions count as a
    possible edge in the direction they could resolve (0→x fires
    posedge, 1→x fires negedge), matching commercial simulators.
    """
    if prev == new:
        return False
    if edge is None:
        return True
    prev_bit, new_bit = prev.bit(0), new.bit(0)
    if edge == "posedge":
        return new_bit == "1" and prev_bit != "1" or \
            new_bit == "x" and prev_bit == "0"
    return new_bit == "0" and prev_bit != "0" or \
        new_bit == "x" and prev_bit == "1"
