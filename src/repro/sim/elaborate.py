"""Elaboration: turn a parsed design into a flat simulatable model.

The elaborator flattens the module hierarchy (instances become prefixed
signal names like ``dut.count``), sizes every signal from its declared
range, evaluates parameters (including ``#(.N(..))`` overrides) and collects
the processes the engine will schedule:

* ``always`` blocks (their sensitivity wrapped as an event control),
* ``initial`` blocks,
* continuous assigns,
* implicit connection assigns created for instance ports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..verilog import ast
from ..verilog.errors import VerilogSemanticError
from . import values as V


class ElaborationError(VerilogSemanticError):
    """Raised when a design cannot be elaborated (missing module, bad port)."""


@dataclass
class Signal:
    """One elaborated net/variable with its storage."""

    name: str                  # fully-qualified (prefixed) name
    width: int
    kind: str                  # 'wire' | 'reg' | 'integer' | ...
    signed: bool = False
    msb: int = 0
    lsb: int = 0
    array_lo: int | None = None
    array_hi: int | None = None
    value: V.Value = None      # type: ignore[assignment]
    array: dict[int, V.Value] = field(default_factory=dict)

    def __post_init__(self):
        if self.value is None:
            self.value = V.Value.unknown(self.width)

    @property
    def is_array(self) -> bool:
        return self.array_lo is not None

    def bit_offset(self, index: int) -> int:
        """Map a declared bit index to a storage offset (0 = LSB)."""
        if self.msb >= self.lsb:
            return index - self.lsb
        return self.lsb - index

    def element(self, index: int) -> V.Value:
        return self.array.get(index, V.Value.unknown(self.width))


@dataclass
class Proc:
    """A schedulable process."""

    kind: str                        # 'always' | 'initial' | 'assign'
    prefix: str                      # hierarchical scope prefix ('' = top)
    module: ast.Module               # module whose functions are in scope
    body: ast.Stmt | None = None     # for always/initial
    # For 'assign' processes:
    lhs: ast.Expr | None = None
    rhs: ast.Expr | None = None
    lhs_prefix: str = ""
    rhs_prefix: str = ""
    index: int = -1                  # assigned by the engine
    line: int = 0                    # source line of the construct

    @property
    def label(self) -> str:
        """Human-readable identity for timeout/error reporting."""
        scope = self.prefix.rstrip(".") or "top"
        where = f" (line {self.line})" if self.line else ""
        return f"{self.kind} process in '{scope}'{where}"


@dataclass
class Design:
    """Flattened design ready for simulation."""

    top: str
    signals: dict[str, Signal] = field(default_factory=dict)
    params: dict[str, dict[str, V.Value]] = field(default_factory=dict)
    functions: dict[str, dict[str, ast.FunctionDecl]] = \
        field(default_factory=dict)
    procs: list[Proc] = field(default_factory=list)

    def signal(self, name: str) -> Signal:
        try:
            return self.signals[name]
        except KeyError:
            raise ElaborationError(f"unknown signal '{name}'") from None


# --------------------------------------------------------------------------
# Constant expression evaluation (parameters, ranges)
# --------------------------------------------------------------------------

_CONST_BINOPS = {
    "+": V.add, "-": V.sub, "*": V.mul, "/": V.div, "%": V.mod,
    "&": V.bit_and, "|": V.bit_or, "^": V.bit_xor,
    "&&": V.logic_and, "||": V.logic_or, "**": V.power,
}


def const_eval(expr: ast.Expr, params: dict[str, V.Value]) -> V.Value:
    """Evaluate a compile-time constant expression over ``params``."""
    if isinstance(expr, ast.Number):
        return V.from_literal(expr.text)
    if isinstance(expr, ast.Identifier):
        if expr.name in params:
            return params[expr.name]
        raise ElaborationError(
            f"identifier '{expr.name}' is not a constant")
    if isinstance(expr, ast.Unary):
        operand = const_eval(expr.operand, params)
        if expr.op == "-":
            return V.sub(V.Value.of(0, operand.width), operand)
        if expr.op == "+":
            return operand
        if expr.op == "~":
            return V.bit_not(operand)
        if expr.op == "!":
            return V.logic_not(operand)
        return V.reduce_op(expr.op, operand)
    if isinstance(expr, ast.Binary):
        if expr.op in _CONST_BINOPS:
            return _CONST_BINOPS[expr.op](const_eval(expr.left, params),
                                          const_eval(expr.right, params))
        if expr.op in ("<<", "<<<"):
            return V.shift_left(const_eval(expr.left, params),
                                const_eval(expr.right, params))
        if expr.op in (">>", ">>>"):
            return V.shift_right(const_eval(expr.left, params),
                                 const_eval(expr.right, params))
        return V.compare(expr.op, const_eval(expr.left, params),
                         const_eval(expr.right, params))
    if isinstance(expr, ast.Ternary):
        cond = const_eval(expr.cond, params)
        branch = expr.if_true if cond.is_true else expr.if_false
        return const_eval(branch, params)
    if isinstance(expr, ast.FunctionCall) and expr.name == "$clog2":
        arg = const_eval(expr.args[0], params).to_int()
        return V.Value.of(max(arg - 1, 0).bit_length(), 32)
    raise ElaborationError(
        f"unsupported constant expression {type(expr).__name__}")


def _const_int(expr: ast.Expr, params: dict[str, V.Value]) -> int:
    value = const_eval(expr, params)
    if value.has_unknown:
        raise ElaborationError("constant expression evaluates to x")
    return value.to_int()


# --------------------------------------------------------------------------
# Elaborator
# --------------------------------------------------------------------------

class Elaborator:
    """Flatten ``source`` starting from module ``top``."""

    def __init__(self, source: ast.SourceFile, top: str,
                 param_overrides: dict[str, int] | None = None):
        self.source = source
        self.top = top
        self.design = Design(top=top)
        self.modules = {m.name: m for m in source.modules}
        self.top_overrides = {
            name: V.Value.of(value, 32)
            for name, value in (param_overrides or {}).items()
        }

    def elaborate(self) -> Design:
        if self.top not in self.modules:
            raise ElaborationError(f"top module '{self.top}' not found")
        self._elaborate_module(self.modules[self.top], prefix="",
                               overrides=self.top_overrides)
        return self.design

    # -- per-module ------------------------------------------------------

    def _elaborate_module(self, module: ast.Module, prefix: str,
                          overrides: dict[str, V.Value]) -> None:
        params = self._eval_params(module, overrides)
        self.design.params[prefix] = params
        self.design.functions[prefix] = {
            fn.name: fn for fn in module.items_of_type(ast.FunctionDecl)
        }
        self._declare_signals(module, prefix, params)
        for item in module.items:
            if isinstance(item, ast.ContinuousAssign):
                for lhs, rhs in item.assignments:
                    self.design.procs.append(Proc(
                        kind="assign", prefix=prefix, module=module,
                        lhs=lhs, rhs=rhs,
                        lhs_prefix=prefix, rhs_prefix=prefix,
                        line=item.line))
            elif isinstance(item, ast.Always):
                self.design.procs.append(Proc(
                    kind="always", prefix=prefix, module=module,
                    body=self._wrap_always(item), line=item.line))
            elif isinstance(item, ast.Initial):
                self.design.procs.append(Proc(
                    kind="initial", prefix=prefix, module=module,
                    body=item.body, line=item.line))
            elif isinstance(item, ast.Instantiation):
                self._elaborate_instantiation(item, module, prefix, params)

    def _wrap_always(self, item: ast.Always) -> ast.Stmt:
        if item.senslist is None:
            return item.body
        return ast.EventControlStmt(senslist=item.senslist, stmt=item.body,
                                    line=item.line)

    def _eval_params(self, module: ast.Module,
                     overrides: dict[str, V.Value]) -> dict[str, V.Value]:
        params: dict[str, V.Value] = {}
        decls = list(module.params) + module.items_of_type(ast.ParamDecl)
        for decl in decls:
            for assign in decl.assignments:
                if decl.kind == "parameter" and assign.name in overrides:
                    params[assign.name] = overrides[assign.name]
                else:
                    params[assign.name] = const_eval(assign.init, params)
        return params

    # -- signals -----------------------------------------------------------

    def _declare_signals(self, module: ast.Module, prefix: str,
                         params: dict[str, V.Value]) -> None:
        declared: dict[str, Signal] = {}

        def add_signal(name: str, kind: str, signed: bool,
                       rng: ast.Range | None,
                       array: ast.Range | None = None) -> None:
            full = prefix + name
            msb = lsb = 0
            if rng is not None:
                msb = _const_int(rng.msb, params)
                lsb = _const_int(rng.lsb, params)
            if kind == "integer":
                msb, lsb = 31, 0
            width = abs(msb - lsb) + 1
            array_lo = array_hi = None
            if array is not None:
                bound_a = _const_int(array.msb, params)
                bound_b = _const_int(array.lsb, params)
                array_lo, array_hi = min(bound_a, bound_b), \
                    max(bound_a, bound_b)
            existing = declared.get(name)
            if existing is not None:
                # Merge port-decl + body decl (e.g. "output count" +
                # "reg [1:0] count"): take widest range and strongest kind.
                if rng is not None:
                    existing.width = width
                    existing.msb, existing.lsb = msb, lsb
                    existing.value = V.Value.unknown(width)
                if kind == "reg" or kind == "integer":
                    existing.kind = kind
                existing.signed = existing.signed or signed
                return
            signal = Signal(name=full, width=width, kind=kind, signed=signed,
                            msb=msb, lsb=lsb, array_lo=array_lo,
                            array_hi=array_hi)
            declared[name] = signal
            self.design.signals[full] = signal

        for port in module.ports:
            if port.decl is not None:
                kind = port.decl.net_kind or "wire"
                add_signal(port.name, kind, port.decl.signed,
                           port.decl.range)
        for item in module.items:
            if isinstance(item, ast.PortDecl):
                kind = item.net_kind or "wire"
                for name in item.names:
                    add_signal(name, kind, item.signed, item.range)
            elif isinstance(item, ast.Decl):
                if item.kind == "genvar":
                    continue
                for decl in item.declarators:
                    add_signal(decl.name, item.kind, item.signed, item.range,
                               decl.array)
                    if decl.init is not None and not decl.array:
                        sig = declared[decl.name]
                        sig.value = const_eval(decl.init, params) \
                            .resized(sig.width)
            elif isinstance(item, (ast.Always, ast.Initial)):
                self._declare_block_locals(item, prefix, params, declared,
                                           add_signal)
        # Header ports without any declaration become 1-bit wires.
        for port in module.ports:
            if port.name not in declared:
                add_signal(port.name, "wire", False, None)

    def _declare_block_locals(self, item, prefix, params, declared,
                              add_signal) -> None:
        """Hoist declarations inside named begin/end blocks to module scope."""
        body = item.body

        def walk(stmt) -> None:
            if isinstance(stmt, ast.Block):
                for child in stmt.stmts:
                    if isinstance(child, ast.Decl):
                        for decl in child.declarators:
                            if decl.name not in declared:
                                add_signal(decl.name, child.kind,
                                           child.signed, child.range,
                                           decl.array)
                    else:
                        walk(child)
            elif isinstance(stmt, (ast.IfStmt,)):
                if stmt.then_stmt:
                    walk(stmt.then_stmt)
                if stmt.else_stmt:
                    walk(stmt.else_stmt)
            elif isinstance(stmt, ast.CaseStmt):
                for case_item in stmt.items:
                    if case_item.stmt:
                        walk(case_item.stmt)
            elif isinstance(stmt, (ast.ForStmt, ast.WhileStmt,
                                   ast.RepeatStmt, ast.ForeverStmt)):
                walk(stmt.body)
            elif isinstance(stmt, (ast.DelayStmt, ast.EventControlStmt,
                                   ast.WaitStmt)):
                if stmt.stmt:
                    walk(stmt.stmt)

        walk(body)

    # -- instances -----------------------------------------------------------

    def _elaborate_instantiation(self, item: ast.Instantiation,
                                 parent: ast.Module, prefix: str,
                                 parent_params: dict[str, V.Value]) -> None:
        child_module = self.modules.get(item.module)
        if child_module is None:
            raise ElaborationError(
                f"module '{item.module}' is not defined")
        for instance in item.instances:
            child_prefix = f"{prefix}{instance.name}."
            overrides = self._instance_overrides(item, child_module,
                                                 parent_params)
            self._elaborate_module(child_module, child_prefix, overrides)
            self._connect_ports(instance, child_module, child_prefix,
                                parent, prefix)

    def _instance_overrides(self, item: ast.Instantiation,
                            child: ast.Module,
                            parent_params: dict[str, V.Value]
                            ) -> dict[str, V.Value]:
        overrides: dict[str, V.Value] = {}
        ordered_names: list[str] = []
        for decl in list(child.params) + child.items_of_type(ast.ParamDecl):
            if decl.kind == "parameter":
                ordered_names.extend(a.name for a in decl.assignments)
        for pos, conn in enumerate(item.param_overrides):
            value = const_eval(conn.expr, parent_params)
            if conn.name is not None:
                overrides[conn.name] = value
            elif pos < len(ordered_names):
                overrides[ordered_names[pos]] = value
        return overrides

    def _connect_ports(self, instance: ast.Instance, child: ast.Module,
                       child_prefix: str, parent: ast.Module,
                       parent_prefix: str) -> None:
        directions = self._port_directions(child)
        port_order = [p.name for p in child.ports]
        for pos, conn in enumerate(instance.connections):
            if conn.name is not None:
                port_name = conn.name
            elif pos < len(port_order):
                port_name = port_order[pos]
            else:
                raise ElaborationError(
                    f"too many connections on instance '{instance.name}'")
            if port_name not in directions:
                raise ElaborationError(
                    f"module '{child.name}' has no port '{port_name}'")
            if conn.expr is None:
                continue  # explicitly unconnected
            direction = directions[port_name]
            port_ref = ast.Identifier(name=port_name, line=conn.line)
            if direction == "input":
                self.design.procs.append(Proc(
                    kind="assign", prefix=child_prefix, module=child,
                    lhs=port_ref, rhs=conn.expr,
                    lhs_prefix=child_prefix, rhs_prefix=parent_prefix,
                    line=conn.line))
            else:  # output / inout treated as child→parent
                self.design.procs.append(Proc(
                    kind="assign", prefix=parent_prefix, module=parent,
                    lhs=conn.expr, rhs=port_ref,
                    lhs_prefix=parent_prefix, rhs_prefix=child_prefix,
                    line=conn.line))

    @staticmethod
    def _port_directions(module: ast.Module) -> dict[str, str]:
        directions: dict[str, str] = {}
        for port in module.ports:
            if port.decl is not None:
                directions[port.name] = port.decl.direction
        for item in module.items_of_type(ast.PortDecl):
            for name in item.names:
                directions[name] = item.direction
        return directions


def elaborate(source: ast.SourceFile, top: str,
              param_overrides: dict[str, int] | None = None) -> Design:
    """Elaborate ``source`` with ``top`` as the root module."""
    return Elaborator(source, top, param_overrides).elaborate()
