"""Compiling simulation backend: lower a Design once, run it many times.

The interpreter (:mod:`repro.sim.engine`) re-resolves names and re-walks
expression trees on every delta cycle.  This module lowers an elaborated
:class:`~repro.sim.elaborate.Design` **once** into plain Python closures:

* **expressions** become nested closures over a flat signal store
  (``rt.store[slot]``) — no per-cycle name resolution, no isinstance
  dispatch, literals pre-parsed into :class:`~repro.sim.values.Value`
  constants and constant subtrees folded at lowering time;
* **processes** are lowered with statically precomputed sensitivity and
  edge sets.  The common RTL shape — ``always @(edges) <delay-free
  body>`` — becomes a *reactive* process: a single compiled function
  re-armed on static ``(slot, edge)`` watch entries, with no generator
  machinery at all.  Testbench-style processes (delays, waits,
  mid-body event controls) compile to coroutines that yield the same
  scheduler requests the interpreter uses;
* **scheduler state** is kept in per-slot arrays (``list`` indexed by
  signal slot) instead of the interpreter's name-keyed dicts of
  ``_Waiter`` objects that re-evaluate sensitivity expressions.

Semantics are mirrored branch-for-branch from the interpreter — the
differential fuzz harness (``tests/test_sim_differential.py``) and the
golden-trace suite assert that final signal states, ``$display``
transcripts and VCD dumps are identical.  Anything the lowerer cannot
prove it handles raises :class:`CompileUnsupported`, and the caller
(:func:`repro.sim.run_simulation`) falls back to the interpreter; the
fallback is counted in :func:`backend_stats`.

Compiled designs are cached in a content-keyed
:class:`CompiledDesignCache` (key = source digest +
:data:`SIM_COMPILE_VERSION`).  Closures cannot be persisted, so the
cache is two-layered: an in-memory LRU holds the compiled artefacts,
while an optional :class:`~repro.scale.cache.ManifestCache`-backed layer
persists *unsupported* verdicts (+ fallback reason) so warm worker
processes skip doomed compile attempts without re-parsing.
"""

from __future__ import annotations

import hashlib
from collections import deque
from dataclasses import dataclass, field
import heapq
import json
import os
import sys
import threading

from ..scale.cache import LRUCache, ManifestCache
from ..verilog import ast
from ..verilog.errors import VerilogError
from . import values as V
from .elaborate import Design, ElaborationError, Proc, Signal, const_eval
from .engine import SimulationError, SimulationTimeout, Simulator, _Finish
from .format import parse_template, render_spec, scope_name

#: Bump when lowering rules or runtime semantics change; invalidates
#: every cached compile verdict and in-memory artefact.
SIM_COMPILE_VERSION = 1

_case_match = Simulator._case_match


class CompileUnsupported(Exception):
    """The lowerer met a construct it cannot compile faithfully.

    Raised at lowering time only — the simulation then falls back to the
    interpreter, which either supports the construct or reports the same
    :class:`SimulationError` the interpreter always did.
    """


# --------------------------------------------------------------------------
# Backend accounting (fallbacks are counted and reported)
# --------------------------------------------------------------------------

@dataclass
class BackendStats:
    """Per-thread accounting of backend selection.

    Counters are kept *per thread* (and therefore per process) so
    concurrent pool workers never race on them; callers that fan work
    out aggregate the per-item :meth:`delta_since` snapshots back
    through their result stream (see ``repro.eval.engine``), which is
    exact regardless of pool type.
    """

    #: Keep the per-reason dict bounded — reasons can embed design
    #: details, and a long sweep must not grow it without limit.
    MAX_REASONS = 64

    _COUNTERS = ("compiled_runs", "interp_runs", "fallbacks",
                 "compiles", "cache_hits", "codegen_hits",
                 "codegen_misses")

    compiled_runs: int = 0        #: simulations served by the compiled backend
    interp_runs: int = 0          #: simulations explicitly run interpreted
    fallbacks: int = 0            #: compiled requests that fell back
    compiles: int = 0             #: actual lowering passes executed
    cache_hits: int = 0           #: compiled-design cache hits (in-memory)
    codegen_hits: int = 0         #: generated-source disk-cache hits
    codegen_misses: int = 0       #: generated-source disk-cache misses
    fallback_reasons: dict[str, int] = field(default_factory=dict)

    def record_fallback(self, reason: str) -> None:
        self.fallbacks += 1
        if reason not in self.fallback_reasons and \
                len(self.fallback_reasons) >= self.MAX_REASONS:
            reason = "other"
        self.fallback_reasons[reason] = \
            self.fallback_reasons.get(reason, 0) + 1

    def copy(self) -> "BackendStats":
        """A detached snapshot of the current counters."""
        return BackendStats(
            **{name: getattr(self, name) for name in self._COUNTERS},
            fallback_reasons=dict(self.fallback_reasons))

    def delta_since(self, before: "BackendStats") -> "BackendStats":
        """Counter increments since a :meth:`copy` snapshot."""
        delta = BackendStats(
            **{name: getattr(self, name) - getattr(before, name)
               for name in self._COUNTERS})
        for reason, count in self.fallback_reasons.items():
            diff = count - before.fallback_reasons.get(reason, 0)
            if diff:
                delta.fallback_reasons[reason] = diff
        return delta

    def add(self, other: "BackendStats") -> None:
        """Accumulate another stats object (e.g. a worker delta)."""
        for name in self._COUNTERS:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        for reason, count in sorted(other.fallback_reasons.items()):
            if reason not in self.fallback_reasons and \
                    len(self.fallback_reasons) >= self.MAX_REASONS:
                reason = "other"
            self.fallback_reasons[reason] = \
                self.fallback_reasons.get(reason, 0) + count

    @property
    def total_runs(self) -> int:
        return self.compiled_runs + self.interp_runs

    def summary(self) -> str:
        return (f"sim backend: {self.compiled_runs} compiled / "
                f"{self.interp_runs} interpreted / "
                f"{self.fallbacks} fallback(s), "
                f"{self.compiles} compile(s), "
                f"{self.cache_hits} cache hit(s), "
                f"{self.codegen_hits}/{self.codegen_misses} "
                f"gen-source hit/miss")


_STATS_LOCAL = threading.local()


def backend_stats() -> BackendStats:
    """The live backend counters of the *calling thread*."""
    stats = getattr(_STATS_LOCAL, "stats", None)
    if stats is None:
        stats = _STATS_LOCAL.stats = BackendStats()
    return stats


def reset_backend_stats() -> None:
    """Test hook: zero the calling thread's backend counters."""
    _STATS_LOCAL.stats = BackendStats()


# --------------------------------------------------------------------------
# Lowering: scopes and name resolution (compile-time only)
# --------------------------------------------------------------------------

class _Scope:
    """Compile-time name resolution: module scope + optional fn locals."""

    __slots__ = ("low", "prefix", "module", "locals", "local_widths")

    def __init__(self, low: "_Lower", prefix: str, module: ast.Module,
                 locals_map: dict[str, int] | None = None,
                 local_widths: dict[str, int] | None = None):
        self.low = low
        self.prefix = prefix
        self.module = module
        self.locals = locals_map
        self.local_widths = local_widths

    def resolve(self, name: str) -> tuple[int, Signal] | None:
        signal = self.low.design.signals.get(self.prefix + name)
        if signal is None:
            return None
        return self.low.slots[signal.name], signal

    def params(self) -> dict[str, V.Value]:
        return self.low.design.params.get(self.prefix, {})

    def fn_scope(self, locals_map, local_widths) -> "_Scope":
        return _Scope(self.low, self.prefix, self.module,
                      locals_map, local_widths)


def _raiser(exc_type, message):
    """A closure that raises lazily — mirrors the interpreter, which
    only errors when the offending construct is actually evaluated."""
    def run(rt, fr, *_ignored):
        raise exc_type(message)
    return run


def _const_closure(value: V.Value):
    def run(rt, fr, _v=value):
        return _v
    return run


class _Lower:
    """One lowering pass over a Design; produces a CompiledDesign."""

    def __init__(self, design: Design):
        self.design = design
        self.names: list[str] = list(design.signals)
        self.slots: dict[str, int] = {n: i for i, n in
                                      enumerate(self.names)}
        self.signals: list[Signal] = [design.signals[n]
                                      for n in self.names]
        self._functions: dict[tuple[str, str], list] = {}
        self._fn_costs: dict[tuple[str, str], int] = {}
        self.stats = {"signals": len(self.names), "procs": 0,
                      "reactive": 0, "coroutines": 0, "assigns": 0,
                      "functions": 0}

    # -- expressions -----------------------------------------------------

    def compile_expr(self, expr: ast.Expr, scope: _Scope):
        closure, _const = self._expr(expr, scope)
        return closure

    def _expr(self, expr: ast.Expr, scope: _Scope):
        """Returns (closure, is_const); const subtrees are folded."""
        closure, is_const = self._expr_raw(expr, scope)
        if is_const:
            try:
                value = closure(None, None)
            except SimulationError:
                return closure, False    # raises lazily, mirror runtime
            return _const_closure(value), True
        return closure, False

    def _expr_raw(self, expr: ast.Expr, scope: _Scope):
        if isinstance(expr, ast.Number):
            return _const_closure(V.from_literal(expr.text)), True
        if isinstance(expr, ast.Identifier):
            return self._identifier(expr.name, scope)
        if isinstance(expr, ast.HierarchicalId):
            name = ".".join(expr.parts)
            signal = self.design.signals.get(scope.prefix + name) or \
                self.design.signals.get(name)
            if signal is None:
                return _raiser(SimulationError,
                               f"unknown hierarchical name '{name}'"), False
            slot = self.slots[signal.name]

            def run(rt, fr, _s=slot):
                return rt.store[_s]
            return run, False
        if isinstance(expr, ast.StringLiteral):
            data = expr.value.encode()
            width = max(8 * len(data), 8)
            return _const_closure(
                V.Value.of(int.from_bytes(data, "big") if data else 0,
                           width)), True
        if isinstance(expr, ast.Unary):
            return self._unary(expr, scope)
        if isinstance(expr, ast.Binary):
            return self._binary(expr, scope)
        if isinstance(expr, ast.Ternary):
            return self._ternary(expr, scope)
        if isinstance(expr, ast.Concat):
            parts = [self._expr(p, scope) for p in expr.parts]
            closures = [c for c, _ in parts]

            def run(rt, fr, _p=closures):
                return V.concat([c(rt, fr) for c in _p])
            return run, all(c for _, c in parts)
        if isinstance(expr, ast.Repl):
            count, count_const = self._expr(expr.count, scope)
            parts = [self._expr(p, scope) for p in expr.parts]
            closures = [c for c, _ in parts]

            def run(rt, fr, _n=count, _p=closures):
                n = _n(rt, fr)
                if n.has_unknown:
                    raise SimulationError("replication count is x")
                return V.replicate(n.to_int(),
                                   V.concat([c(rt, fr) for c in _p]))
            return run, count_const and all(c for _, c in parts)
        if isinstance(expr, ast.Index):
            return self._index(expr, scope)
        if isinstance(expr, ast.PartSelect):
            return self._part_select(expr, scope)
        if isinstance(expr, ast.FunctionCall):
            return self._call(expr, scope)
        return _raiser(SimulationError,
                       f"cannot evaluate expression "
                       f"{type(expr).__name__}"), False

    def _identifier(self, name: str, scope: _Scope):
        if scope.locals is not None and name in scope.locals:
            idx = scope.locals[name]

            def run(rt, fr, _i=idx):
                return fr[_i]
            return run, False
        resolved = scope.resolve(name)
        if resolved is not None:
            slot, signal = resolved
            if signal.is_array:
                return _raiser(SimulationError,
                               f"memory '{name}' used without "
                               f"an index"), False

            def run(rt, fr, _s=slot):
                return rt.store[_s]
            return run, False
        params = scope.params()
        if name in params:
            return _const_closure(params[name]), True
        return _raiser(SimulationError,
                       f"identifier '{name}' is not declared"), False

    def _unary(self, expr: ast.Unary, scope: _Scope):
        operand, const = self._expr(expr.operand, scope)
        op = expr.op
        if op == "+":
            return operand, const
        if op == "-":
            def run(rt, fr, _o=operand):
                value = _o(rt, fr)
                return V.sub(V.Value.of(0, value.width), value)
            return run, const
        if op == "~":
            def run(rt, fr, _o=operand):
                return V.bit_not(_o(rt, fr))
            return run, const
        if op == "!":
            def run(rt, fr, _o=operand):
                return V.logic_not(_o(rt, fr))
            return run, const

        def run(rt, fr, _o=operand, _op=op):
            return V.reduce_op(_op, _o(rt, fr))
        return run, const

    def _binary(self, expr: ast.Binary, scope: _Scope):
        op = expr.op
        left, lconst = self._expr(expr.left, scope)
        right, rconst = self._expr(expr.right, scope)
        const = lconst and rconst
        handler = Simulator._BINOPS.get(op)
        if handler is not None:
            def run(rt, fr, _l=left, _r=right, _h=handler):
                return _h(_l(rt, fr), _r(rt, fr))
            return run, const
        if op in ("<<", "<<<"):
            def run(rt, fr, _l=left, _r=right):
                return V.shift_left(_l(rt, fr), _r(rt, fr))
            return run, const
        if op == ">>":
            def run(rt, fr, _l=left, _r=right):
                return V.shift_right(_l(rt, fr), _r(rt, fr))
            return run, const
        if op == ">>>":
            signed = self._is_signed(expr.left, scope)

            def run(rt, fr, _l=left, _r=right, _s=signed):
                return V.shift_right(_l(rt, fr), _r(rt, fr),
                                     arithmetic=True, signed=_s)
            return run, const
        if op in ("==", "!=", "===", "!==", "<", "<=", ">", ">="):
            signed = (self._is_signed(expr.left, scope)
                      and self._is_signed(expr.right, scope))

            def run(rt, fr, _l=left, _r=right, _op=op, _s=signed):
                return V.compare(_op, _l(rt, fr), _r(rt, fr), signed=_s)
            return run, const
        return _raiser(SimulationError,
                       f"unsupported binary operator '{op}'"), False

    def _ternary(self, expr: ast.Ternary, scope: _Scope):
        cond, cconst = self._expr(expr.cond, scope)
        if_true, tconst = self._expr(expr.if_true, scope)
        if_false, fconst = self._expr(expr.if_false, scope)

        def run(rt, fr, _c=cond, _t=if_true, _f=if_false):
            c = _c(rt, fr)
            if c.is_true:
                return _t(rt, fr)
            if c.has_unknown:
                a = _t(rt, fr)
                b = _f(rt, fr)
                width = max(a.width, b.width)
                a, b = a.resized(width), b.resized(width)
                same = ~(a.val ^ b.val) & ~(a.xz | b.xz)
                return V.Value(width=width, val=a.val & same,
                               xz=((1 << width) - 1) & ~same)
            return _f(rt, fr)
        return run, cconst and tconst and fconst

    def _index(self, expr: ast.Index, scope: _Scope):
        index, iconst = self._expr(expr.index, scope)
        # Like the interpreter, the base resolves against module signals
        # even where a function local shadows the name.
        if isinstance(expr.base, ast.Identifier):
            resolved = scope.resolve(expr.base.name)
            if resolved is not None:
                slot, signal = resolved
                if signal.is_array:
                    width = signal.width

                    def run(rt, fr, _s=slot, _i=index, _w=width):
                        i = _i(rt, fr)
                        if i.has_unknown:
                            return V.Value.unknown(_w)
                        return rt.arrays[_s].get(i.to_int(),
                                                 V.Value.unknown(_w))
                    return run, False
                descending = signal.msb >= signal.lsb
                base_bit = signal.lsb

                def run(rt, fr, _s=slot, _i=index, _d=descending,
                        _b=base_bit):
                    i = _i(rt, fr)
                    if i.has_unknown:
                        return V.Value.unknown(1)
                    offset = (i.to_int() - _b) if _d else (_b - i.to_int())
                    return rt.store[_s].select_bit(offset)
                return run, False
        base, bconst = self._expr(expr.base, scope)

        def run(rt, fr, _b=base, _i=index):
            return _b(rt, fr).select_bit(_i(rt, fr))
        return run, bconst and iconst

    def _part_select(self, expr: ast.PartSelect, scope: _Scope):
        base_info = None           # (slot, signal) for plain signals
        if isinstance(expr.base, ast.Identifier):
            resolved = scope.resolve(expr.base.name)
            if resolved is not None and not resolved[1].is_array:
                base_info = resolved
        msb, mconst = self._expr(expr.msb, scope)
        lsb, lconst = self._expr(expr.lsb, scope)
        if expr.mode == ":":
            if base_info is not None:
                slot, signal = base_info
                descending = signal.msb >= signal.lsb
                base_bit = signal.lsb

                def run(rt, fr, _s=slot, _m=msb, _l=lsb, _d=descending,
                        _b=base_bit):
                    hi = _m(rt, fr).to_int()
                    lo = _l(rt, fr).to_int()
                    off_hi = (hi - _b) if _d else (_b - hi)
                    off_lo = (lo - _b) if _d else (_b - lo)
                    return rt.store[_s].select_range(off_hi, off_lo)
                return run, False
            base, bconst = self._expr(expr.base, scope)

            def run(rt, fr, _base=base, _m=msb, _l=lsb):
                hi = _m(rt, fr).to_int()
                lo = _l(rt, fr).to_int()
                return _base(rt, fr).select_range(hi, lo)
            return run, bconst and mconst and lconst
        # Indexed part select: base[i +: w] / base[i -: w]
        plus = expr.mode == "+:"
        if base_info is not None:
            slot, signal = base_info
            descending = signal.msb >= signal.lsb
            base_bit = signal.lsb

            def run(rt, fr, _s=slot, _m=msb, _l=lsb, _p=plus,
                    _d=descending, _b=base_bit):
                start = _m(rt, fr)
                width = _l(rt, fr).to_int()
                if start.has_unknown:
                    return V.Value.unknown(width)
                start_idx = start.to_int()
                if _p:
                    lo, hi = start_idx, start_idx + width - 1
                else:
                    lo, hi = start_idx - width + 1, start_idx
                off_hi = (hi - _b) if _d else (_b - hi)
                off_lo = (lo - _b) if _d else (_b - lo)
                return rt.store[_s].select_range(off_hi, off_lo)
            return run, False
        base, bconst = self._expr(expr.base, scope)

        def run(rt, fr, _base=base, _m=msb, _l=lsb, _p=plus):
            start = _m(rt, fr)
            width = _l(rt, fr).to_int()
            if start.has_unknown:
                return V.Value.unknown(width)
            start_idx = start.to_int()
            if _p:
                lo, hi = start_idx, start_idx + width - 1
            else:
                lo, hi = start_idx - width + 1, start_idx
            return _base(rt, fr).select_range(hi, lo)
        return run, bconst and mconst and lconst

    # -- signedness (static twin of Simulator._is_signed) ----------------

    def _is_signed(self, expr: ast.Expr, scope: _Scope) -> bool:
        if isinstance(expr, ast.Number):
            return "'" not in expr.text or expr.signed
        if isinstance(expr, ast.Identifier):
            resolved = scope.resolve(expr.name)
            if resolved is not None:
                signal = resolved[1]
                return signal.signed or signal.kind == "integer"
            return True   # parameters: treat as signed integers
        if isinstance(expr, ast.Unary) and expr.op in ("+", "-"):
            return self._is_signed(expr.operand, scope)
        if isinstance(expr, ast.Binary) and expr.op in ("+", "-", "*",
                                                        "/", "%"):
            return (self._is_signed(expr.left, scope)
                    and self._is_signed(expr.right, scope))
        if isinstance(expr, ast.FunctionCall) and expr.name == "$signed":
            return True
        return False

    # -- function calls --------------------------------------------------

    def _call(self, expr: ast.FunctionCall, scope: _Scope):
        if expr.is_system:
            return self._system_call(expr, scope)
        fn = self.design.functions.get(scope.prefix, {}).get(expr.name)
        if fn is None:
            return _raiser(SimulationError,
                           f"unknown function '{expr.name}'"), False
        plan = self._function_plan(fn, scope)
        ret_width, arg_widths, decl_inits, body_cell, frame_size = plan
        arg_closures = [self.compile_expr(a, scope) for a in expr.args]

        def run(rt, fr, _rw=ret_width, _aw=arg_widths, _di=decl_inits,
                _body=body_cell, _n=frame_size, _args=arg_closures):
            frame = [None] * _n
            frame[0] = V.Value.unknown(_rw)
            for pos, width in enumerate(_aw):
                if pos < len(_args):
                    frame[pos + 1] = _args[pos](rt, fr).resized(width)
                else:
                    frame[pos + 1] = V.Value.unknown(width)
            for idx, width in _di:
                frame[idx] = V.Value.unknown(width)
            _body[0](rt, frame)
            return frame[0]
        return run, False

    def _function_plan(self, fn: ast.FunctionDecl, scope: _Scope):
        key = (scope.prefix, fn.name)
        cached = self._functions.get(key)
        if cached is not None:
            return cached
        params = scope.params()
        ret_width = 1
        if fn.range is not None:
            msb = const_eval(fn.range.msb, params).to_int()
            lsb = const_eval(fn.range.lsb, params).to_int()
            ret_width = abs(msb - lsb) + 1
        locals_map: dict[str, int] = {fn.name: 0}
        local_widths: dict[str, int] = {fn.name: ret_width}
        arg_widths: list[int] = []
        decl_inits: list[tuple[int, int]] = []
        for item in fn.items:
            if isinstance(item, ast.PortDecl) and item.direction == "input":
                for name in item.names:
                    width = 1
                    if item.range is not None:
                        msb = const_eval(item.range.msb, params).to_int()
                        lsb = const_eval(item.range.lsb, params).to_int()
                        width = abs(msb - lsb) + 1
                    locals_map[name] = len(locals_map)
                    local_widths[name] = width
                    arg_widths.append(width)
            elif isinstance(item, ast.Decl):
                for decl in item.declarators:
                    width = 32 if item.kind == "integer" else 1
                    if item.range is not None:
                        msb = const_eval(item.range.msb, params).to_int()
                        lsb = const_eval(item.range.lsb, params).to_int()
                        width = abs(msb - lsb) + 1
                    locals_map[decl.name] = len(locals_map)
                    local_widths[decl.name] = width
                    decl_inits.append((locals_map[decl.name], width))
        body_cell: list = [None]
        plan = (ret_width, arg_widths, decl_inits, body_cell,
                len(locals_map))
        # Register before compiling the body so recursive calls resolve.
        self._functions[key] = plan
        fn_scope = scope.fn_scope(locals_map, local_widths)
        if fn.body is not None and _needs_coroutine(fn.body):
            raise CompileUnsupported(
                "delay or event control inside a function")
        body = self.compile_sync(fn.body, fn_scope) if fn.body is not None \
            else None
        body_cell[0] = body if body is not None else (lambda rt, fr: None)
        self.stats["functions"] += 1
        return plan

    def _system_call(self, expr: ast.FunctionCall, scope: _Scope):
        name = expr.name
        if name == "$time":
            def run(rt, fr):
                return V.Value.of(rt.time, 64)
            return run, False
        if name == "$random":
            def run(rt, fr):
                rt._rand_state = (rt._rand_state * 1103515245 + 12345) \
                    & 0xFFFFFFFF
                return V.Value.of(rt._rand_state, 32)
            return run, False
        if name in ("$signed", "$unsigned"):
            return self._expr(expr.args[0], scope)
        if name == "$clog2":
            arg, const = self._expr(expr.args[0], scope)

            def run(rt, fr, _a=arg):
                value = _a(rt, fr)
                if value.has_unknown:
                    return V.Value.unknown(32)
                return V.Value.of(max(value.to_int() - 1, 0).bit_length(),
                                  32)
            return run, const
        return _raiser(SimulationError,
                       f"unsupported system function '{name}'"), False

    # -- lvalues ---------------------------------------------------------

    def compile_writer(self, lhs: ast.Expr, scope: _Scope):
        """Compile an assignment target to ``writer(rt, fr, value)``."""
        if isinstance(lhs, ast.Concat):
            return self._concat_writer(lhs, scope)
        if isinstance(lhs, ast.Identifier):
            if scope.locals is not None and lhs.name in scope.locals:
                idx = scope.locals[lhs.name]
                width = scope.local_widths[lhs.name]

                def write(rt, fr, value, _i=idx, _w=width):
                    fr[_i] = value.resized(_w)
                return write
            resolved = scope.resolve(lhs.name)
            if resolved is None:
                return _raiser(SimulationError,
                               f"identifier '{lhs.name}' is not declared")
            slot, signal = resolved
            width = signal.width

            def write(rt, fr, value, _s=slot, _w=width):
                rt.set_slot(_s, value.resized(_w))
            return write
        if isinstance(lhs, ast.HierarchicalId):
            name = ".".join(lhs.parts)
            signal = self.design.signals.get(scope.prefix + name) or \
                self.design.signals.get(name)
            if signal is None:
                return _raiser(SimulationError,
                               f"unknown hierarchical name '{name}'")
            slot = self.slots[signal.name]
            width = signal.width

            def write(rt, fr, value, _s=slot, _w=width):
                rt.set_slot(_s, value.resized(_w))
            return write
        if isinstance(lhs, ast.Index):
            return self._index_writer(lhs, scope)
        if isinstance(lhs, ast.PartSelect):
            return self._select_writer(lhs, scope)
        return _raiser(SimulationError,
                       f"invalid assignment target {type(lhs).__name__}")

    def _index_writer(self, lhs: ast.Index, scope: _Scope):
        if not isinstance(lhs.base, ast.Identifier):
            return _raiser(SimulationError,
                           "unsupported nested lvalue index")
        resolved = scope.resolve(lhs.base.name)
        if resolved is None:
            return _raiser(SimulationError,
                           f"identifier '{lhs.base.name}' is not declared")
        slot, signal = resolved
        index = self.compile_expr(lhs.index, scope)
        if signal.is_array:
            width = signal.width

            def write(rt, fr, value, _s=slot, _i=index, _w=width):
                i = _i(rt, fr)
                if i.has_unknown:
                    return        # write to x index is lost
                rt.set_element(_s, i.to_int(), value.resized(_w))
            return write
        descending = signal.msb >= signal.lsb
        base_bit = signal.lsb
        width = signal.width

        def write(rt, fr, value, _s=slot, _i=index, _d=descending,
                  _b=base_bit, _w=width):
            i = _i(rt, fr)
            if i.has_unknown:
                return            # write to x index is lost
            offset = (i.to_int() - _b) if _d else (_b - i.to_int())
            if 0 <= offset < _w:
                rt.set_slot(_s,
                            rt.store[_s].with_bits(offset, offset, value))
        return write

    def _select_writer(self, lhs: ast.PartSelect, scope: _Scope):
        if not isinstance(lhs.base, ast.Identifier):
            return _raiser(SimulationError,
                           "unsupported nested lvalue select")
        resolved = scope.resolve(lhs.base.name)
        if resolved is None:
            return _raiser(SimulationError,
                           f"identifier '{lhs.base.name}' is not declared")
        slot, signal = resolved
        descending = signal.msb >= signal.lsb
        base_bit = signal.lsb
        msb = self.compile_expr(lhs.msb, scope)
        lsb = self.compile_expr(lhs.lsb, scope)
        ranged = lhs.mode == ":"
        plus = lhs.mode == "+:"

        def write(rt, fr, value, _s=slot, _m=msb, _l=lsb, _r=ranged,
                  _p=plus, _d=descending, _b=base_bit):
            if _r:
                hi = _m(rt, fr).to_int()
                lo = _l(rt, fr).to_int()
            else:
                start = _m(rt, fr).to_int()
                width = _l(rt, fr).to_int()
                if _p:
                    lo, hi = start, start + width - 1
                else:
                    hi, lo = start, start - width + 1
            off_hi = (hi - _b) if _d else (_b - hi)
            off_lo = (lo - _b) if _d else (_b - lo)
            rt.set_slot(_s, rt.store[_s].with_bits(
                max(off_hi, off_lo), min(off_hi, off_lo), value))
        return write

    def _concat_writer(self, lhs: ast.Concat, scope: _Scope):
        parts = [(self._lvalue_width(p, scope),
                  self.compile_writer(p, scope)) for p in lhs.parts]
        if all(w is not None for w, _ in parts):
            total = sum(w for w, _ in parts)

            def write(rt, fr, value, _parts=parts, _t=total):
                value = value.resized(_t)
                offset = _t
                for width, writer in _parts:
                    offset -= width
                    writer(rt, fr,
                           value.select_range(offset + width - 1, offset))
            return write
        raise CompileUnsupported(
            "concatenation lvalue with non-static part widths")

    def _lvalue_width(self, expr: ast.Expr, scope: _Scope) -> int | None:
        """Static width of an assignment target part, or None."""
        if isinstance(expr, ast.Identifier):
            if scope.locals is not None and expr.name in scope.locals:
                return scope.local_widths[expr.name]
            resolved = scope.resolve(expr.name)
            return resolved[1].width if resolved is not None else None
        if isinstance(expr, ast.Index):
            if isinstance(expr.base, ast.Identifier):
                resolved = scope.resolve(expr.base.name)
                if resolved is not None and resolved[1].is_array:
                    return resolved[1].width
            return 1
        if isinstance(expr, ast.PartSelect):
            params = scope.params()
            try:
                if expr.mode == ":":
                    msb = const_eval(expr.msb, params).to_int()
                    lsb = const_eval(expr.lsb, params).to_int()
                    return abs(msb - lsb) + 1
                return const_eval(expr.lsb, params).to_int()
            except (ElaborationError, VerilogError):
                return None
        if isinstance(expr, ast.Concat):
            widths = [self._lvalue_width(p, scope) for p in expr.parts]
            if any(w is None for w in widths):
                return None
            return sum(widths)
        return None

    # -- statements: sync (no suspension anywhere in the subtree) --------

    def compile_sync(self, stmt: ast.Stmt | None, scope: _Scope):
        """Compile a delay-free statement to ``fn(rt, fr)`` (or None)."""
        if stmt is None or isinstance(stmt, (ast.NullStmt, ast.Decl,
                                             ast.DisableStmt)):
            return None
        if isinstance(stmt, ast.Block):
            closures = tuple(c for c in
                             (self.compile_sync(child, scope)
                              for child in stmt.stmts
                              if not isinstance(child, ast.Decl))
                             if c is not None)
            if not closures:
                return None
            if len(closures) == 1:
                return closures[0]

            def run(rt, fr, _c=closures):
                for closure in _c:
                    closure(rt, fr)
            return run
        if isinstance(stmt, ast.BlockingAssign):
            rhs = self.compile_expr(stmt.rhs, scope)
            writer = self.compile_writer(stmt.lhs, scope)
            if stmt.delay is None:
                def run(rt, fr, _r=rhs, _w=writer):
                    _w(rt, fr, _r(rt, fr))
                return run
            # Only reachable inside functions (processes route delayed
            # blocking assigns through the coroutine path): a nonzero
            # delay is the interpreter's "delay inside a function" error.
            delay = self.compile_expr(stmt.delay, scope)

            def run(rt, fr, _r=rhs, _w=writer, _d=delay):
                value = _r(rt, fr)
                if _d(rt, fr).to_int():
                    raise SimulationError(
                        "delay or event control inside a function")
                _w(rt, fr, value)
            return run
        if isinstance(stmt, ast.NonBlockingAssign):
            rhs = self.compile_expr(stmt.rhs, scope)
            writer = self.compile_writer(stmt.lhs, scope)
            if stmt.delay is not None:
                delay = self.compile_expr(stmt.delay, scope)

                def run(rt, fr, _r=rhs, _w=writer, _d=delay):
                    value = _r(rt, fr)
                    rt.schedule_nba(_d(rt, fr).to_int(), _w, value, fr)
                return run

            def run(rt, fr, _r=rhs, _w=writer):
                rt._nba.append((_w, _r(rt, fr), fr))
            return run
        if isinstance(stmt, ast.IfStmt):
            cond = self.compile_expr(stmt.cond, scope)
            then = self.compile_sync(stmt.then_stmt, scope)
            has_else = stmt.else_stmt is not None
            other = self.compile_sync(stmt.else_stmt, scope)

            def run(rt, fr, _c=cond, _t=then, _e=other, _h=has_else):
                if _c(rt, fr).is_true:
                    if _t is not None:
                        _t(rt, fr)
                elif _h and _e is not None:
                    _e(rt, fr)
            return run
        if isinstance(stmt, ast.CaseStmt):
            selector, plans, default = self._case_plan(
                stmt, scope, self.compile_sync)

            def run(rt, fr, _s=selector, _p=plans, _d=default,
                    _k=stmt.kind):
                sel = _s(rt, fr)
                for labels, branch in _p:
                    for label in labels:
                        if _case_match(_k, sel, label(rt, fr)):
                            if branch is not None:
                                branch(rt, fr)
                            return
                if _d is not None:
                    _d(rt, fr)
            return run
        if isinstance(stmt, ast.ForStmt):
            init = self.compile_sync(stmt.init, scope)
            cond = self.compile_expr(stmt.cond, scope)
            step = self.compile_sync(stmt.step, scope)
            body = self.compile_sync(stmt.body, scope)
            cost = self._loop_cost(stmt, scope)

            def run(rt, fr, _i=init, _c=cond, _s=step, _b=body, _k=cost):
                if _i is not None:
                    _i(rt, fr)
                while _c(rt, fr).is_true:
                    rt.charge(_k)
                    if _b is not None:
                        _b(rt, fr)
                    if _s is not None:
                        _s(rt, fr)
            return run
        if isinstance(stmt, ast.WhileStmt):
            cond = self.compile_expr(stmt.cond, scope)
            body = self.compile_sync(stmt.body, scope)
            cost = self._loop_cost(stmt, scope)

            def run(rt, fr, _c=cond, _b=body, _k=cost):
                while _c(rt, fr).is_true:
                    rt.charge(_k)
                    if _b is not None:
                        _b(rt, fr)
            return run
        if isinstance(stmt, ast.RepeatStmt):
            count = self.compile_expr(stmt.count, scope)
            body = self.compile_sync(stmt.body, scope)
            cost = self._loop_cost(stmt, scope)

            def run(rt, fr, _n=count, _b=body, _k=cost):
                for _ in range(max(_n(rt, fr).to_int(), 0)):
                    rt.charge(_k)
                    if _b is not None:
                        _b(rt, fr)
            return run
        if isinstance(stmt, ast.ForeverStmt):
            body = self.compile_sync(stmt.body, scope)
            cost = self._loop_cost(stmt, scope)

            def run(rt, fr, _b=body, _k=cost):
                while True:
                    rt.charge(_k)
                    if _b is not None:
                        _b(rt, fr)
            return run
        if isinstance(stmt, ast.SysTaskCall):
            return self._systask(stmt, scope)
        if isinstance(stmt, ast.TaskCall):
            return _raiser(SimulationError,
                           f"user task '{stmt.name}' is not supported")
        if isinstance(stmt, (ast.DelayStmt, ast.EventControlStmt,
                             ast.WaitStmt)):
            # Reachable only inside function bodies (processes take the
            # coroutine path) — mirrors the interpreter's runtime error.
            return _raiser(SimulationError,
                           "delay or event control inside a function")
        return _raiser(SimulationError,
                       f"cannot execute statement {type(stmt).__name__}")

    def _case_plan(self, stmt: ast.CaseStmt, scope: _Scope, compile_fn):
        selector = self.compile_expr(stmt.expr, scope)
        plans = []
        default = None
        for item in stmt.items:
            branch = compile_fn(item.stmt, scope)
            if not item.exprs:
                default = branch       # later defaults win, like the
                continue               # interpreter's scan
            labels = tuple(self.compile_expr(e, scope)
                           for e in item.exprs)
            plans.append((labels, branch))
        return selector, tuple(plans), default

    # -- $display and friends --------------------------------------------

    _DISPLAY = ("$display", "$write", "$strobe", "$monitor", "$error",
                "$warning", "$info")

    def _systask(self, stmt: ast.SysTaskCall, scope: _Scope):
        name = stmt.name
        if name in self._DISPLAY:
            render = self._display_plan(stmt.args, scope)
            prefix = "ERROR: " if name == "$error" else ""

            def run(rt, fr, _r=render, _p=prefix):
                rt.display_lines.append(_p + _r(rt, fr))
            return run
        if name in ("$finish", "$stop", "$fatal"):
            def run(rt, fr):
                rt.finished = True
                raise _Finish()
            return run
        if name == "$dumpfile":
            filename = "dump.vcd"
            if stmt.args and isinstance(stmt.args[0], ast.StringLiteral):
                filename = stmt.args[0].value

            def run(rt, fr, _f=filename):
                rt.enable_tracing(_f)
                rt.tracer.enabled = False   # armed by $dumpvars
            return run
        if name == "$dumpvars":
            def run(rt, fr):
                tracer = rt.enable_tracing(
                    rt.tracer.filename if rt.tracer else "dump.vcd")
                tracer.enabled = True
                rt.snapshot_tracer()
            return run
        if name == "$dumpon":
            def run(rt, fr):
                if rt.tracer is not None:
                    rt.tracer.enabled = True
            return run
        if name == "$dumpoff":
            def run(rt, fr):
                if rt.tracer is not None:
                    rt.tracer.enabled = False
            return run
        if name in ("$timeformat", "$readmemh", "$readmemb"):
            return None   # accepted and ignored
        return _raiser(SimulationError,
                       f"unsupported system task '{name}'")

    def _display_plan(self, args: list[ast.Expr], scope: _Scope):
        """Compile $display arguments to ``fn(rt, fr) -> str``."""
        if not args:
            return lambda rt, fr: ""
        first = args[0]
        if not isinstance(first, ast.StringLiteral):
            pieces = []
            for arg in args:
                if isinstance(arg, ast.StringLiteral):
                    pieces.append(arg.value)
                else:
                    closure = self.compile_expr(arg, scope)
                    pieces.append(closure)

            def run(rt, fr, _p=pieces):
                return " ".join(
                    piece if isinstance(piece, str)
                    else V.format_value(piece(rt, fr), "d")
                    for piece in _p)
            return run
        # Leading format string: precompile the render plan.  Each plan
        # entry is either literal text or a (spec, closure|None) pair.
        rest = args[1:]
        arg_iter = iter(rest)
        mod_text = scope_name(scope.prefix, self.design.top)
        plan: list = []
        for segment in parse_template(first.value):
            kind = segment[0]
            if kind == "lit":
                plan.append(segment[1])
            elif kind == "pct":
                plan.append("%")
            elif kind == "mod":
                plan.append(mod_text)
            else:
                spec = segment[1]
                try:
                    arg = next(arg_iter)
                except StopIteration:
                    plan.append("%" + spec)
                    continue
                if spec == "s" and isinstance(arg, ast.StringLiteral):
                    plan.append(arg.value)
                    continue
                plan.append((spec, self.compile_expr(arg, scope)))
        plan_t = tuple(plan)

        def run(rt, fr, _p=plan_t):
            return "".join(
                piece if isinstance(piece, str)
                else render_spec(piece[0], piece[1](rt, fr))
                for piece in _p)
        return run

    # -- statements: coroutines (suspension somewhere in the subtree) ----

    def compile_coro(self, stmt: ast.Stmt, scope: _Scope):
        """Compile to a generator function ``g(rt)`` yielding scheduler
        requests ``("delay", ticks)`` / ``("wait", entries)``."""
        if isinstance(stmt, ast.Block):
            steps = []
            for child in stmt.stmts:
                if isinstance(child, ast.Decl):
                    continue
                if _needs_coroutine(child):
                    steps.append((True, self.compile_coro(child, scope)))
                else:
                    closure = self.compile_sync(child, scope)
                    if closure is not None:
                        steps.append((False, closure))
            steps_t = tuple(steps)

            def gen(rt, _s=steps_t):
                for is_coro, closure in _s:
                    if is_coro:
                        yield from closure(rt)
                    else:
                        closure(rt, None)
            return gen
        if isinstance(stmt, ast.DelayStmt):
            delay = self.compile_expr(stmt.delay, scope)
            inner_coro = stmt.stmt is not None and \
                _needs_coroutine(stmt.stmt)
            inner = (self.compile_coro(stmt.stmt, scope) if inner_coro
                     else self.compile_sync(stmt.stmt, scope))

            def gen(rt, _d=delay, _i=inner, _c=inner_coro):
                yield ("delay", _d(rt, None).to_int())
                if _i is not None:
                    if _c:
                        yield from _i(rt)
                    else:
                        _i(rt, None)
            return gen
        if isinstance(stmt, ast.EventControlStmt):
            entries = self._sens_entries(stmt.senslist, scope)
            inner_coro = stmt.stmt is not None and \
                _needs_coroutine(stmt.stmt)
            inner = (self.compile_coro(stmt.stmt, scope) if inner_coro
                     else self.compile_sync(stmt.stmt, scope))

            def gen(rt, _e=entries, _i=inner, _c=inner_coro):
                yield ("wait", _e)
                if _i is not None:
                    if _c:
                        yield from _i(rt)
                    else:
                        _i(rt, None)
            return gen
        if isinstance(stmt, ast.WaitStmt):
            cond = self.compile_expr(stmt.cond, scope)
            entries = tuple((slot, None) for slot in
                            self._expr_dep_slots(stmt.cond, scope))
            spec = _WatchSpec(entries, self.names, self.signals)
            inner_coro = stmt.stmt is not None and \
                _needs_coroutine(stmt.stmt)
            inner = (self.compile_coro(stmt.stmt, scope) if inner_coro
                     else self.compile_sync(stmt.stmt, scope))

            def gen(rt, _cond=cond, _e=spec, _i=inner, _c=inner_coro):
                while not _cond(rt, None).is_true:
                    if not _e.slots:
                        raise SimulationError(
                            "wait() on constant expression")
                    yield ("wait", _e)
                if _i is not None:
                    if _c:
                        yield from _i(rt)
                    else:
                        _i(rt, None)
            return gen
        if isinstance(stmt, ast.BlockingAssign):    # with delay
            rhs = self.compile_expr(stmt.rhs, scope)
            writer = self.compile_writer(stmt.lhs, scope)
            delay = self.compile_expr(stmt.delay, scope)

            def gen(rt, _r=rhs, _w=writer, _d=delay):
                value = _r(rt, None)
                ticks = _d(rt, None).to_int()
                if ticks:
                    yield ("delay", ticks)
                _w(rt, None, value)
            return gen
        if isinstance(stmt, ast.IfStmt):
            cond = self.compile_expr(stmt.cond, scope)
            then = self._branch(stmt.then_stmt, scope)
            has_else = stmt.else_stmt is not None
            other = self._branch(stmt.else_stmt, scope)

            def gen(rt, _c=cond, _t=then, _e=other, _h=has_else):
                if _c(rt, None).is_true:
                    yield from _run_branch(rt, _t)
                elif _h:
                    yield from _run_branch(rt, _e)
            return gen
        if isinstance(stmt, ast.CaseStmt):
            selector, plans, default = self._case_plan(
                stmt, scope, lambda s, sc: self._branch(s, sc))

            def gen(rt, _s=selector, _p=plans, _d=default, _k=stmt.kind):
                sel = _s(rt, None)
                for labels, branch in _p:
                    for label in labels:
                        if _case_match(_k, sel, label(rt, None)):
                            yield from _run_branch(rt, branch)
                            return
                if _d is not None:
                    yield from _run_branch(rt, _d)
            return gen
        if isinstance(stmt, ast.ForStmt):
            init = self.compile_sync(stmt.init, scope)
            cond = self.compile_expr(stmt.cond, scope)
            step = self.compile_sync(stmt.step, scope)
            body = self.compile_coro(stmt.body, scope)
            cost = self._loop_cost(stmt, scope)

            def gen(rt, _i=init, _c=cond, _s=step, _b=body, _k=cost):
                if _i is not None:
                    _i(rt, None)
                while _c(rt, None).is_true:
                    rt.charge(_k)
                    yield from _b(rt)
                    if _s is not None:
                        _s(rt, None)
            return gen
        if isinstance(stmt, ast.WhileStmt):
            cond = self.compile_expr(stmt.cond, scope)
            body = self.compile_coro(stmt.body, scope)
            cost = self._loop_cost(stmt, scope)

            def gen(rt, _c=cond, _b=body, _k=cost):
                while _c(rt, None).is_true:
                    rt.charge(_k)
                    yield from _b(rt)
            return gen
        if isinstance(stmt, ast.RepeatStmt):
            count = self.compile_expr(stmt.count, scope)
            body = self.compile_coro(stmt.body, scope)
            cost = self._loop_cost(stmt, scope)

            def gen(rt, _n=count, _b=body, _k=cost):
                for _ in range(max(_n(rt, None).to_int(), 0)):
                    rt.charge(_k)
                    yield from _b(rt)
            return gen
        if isinstance(stmt, ast.ForeverStmt):
            body = self.compile_coro(stmt.body, scope)
            cost = self._loop_cost(stmt, scope)

            def gen(rt, _b=body, _k=cost):
                while True:
                    rt.charge(_k)
                    yield from _b(rt)
            return gen
        # A statement that cannot actually suspend reached the coroutine
        # path (defensive): run its sync form.
        closure = self.compile_sync(stmt, scope)

        def gen(rt, _c=closure):
            if _c is not None:
                _c(rt, None)
            return
            yield   # pragma: no cover — marks this as a generator
        return gen

    def _branch(self, stmt: ast.Stmt | None, scope: _Scope):
        """Compile an if/case arm to (is_coro, closure|None)."""
        if stmt is None:
            return (False, None)
        if _needs_coroutine(stmt):
            return (True, self.compile_coro(stmt, scope))
        return (False, self.compile_sync(stmt, scope))

    # -- step-budget cost model -------------------------------------------

    # The interpreter charges one step per eval() node and per _exec()
    # statement; the compiled runtime walks no trees, so loops and
    # activations charge these statically computed costs instead.  The
    # costs are designed to be >= the interpreter's charge for one pass
    # (branch costs take the max arm, label lists the full sum), so a
    # design near the budget times out on the compiled backend no later
    # than on the interpreter — and a compiled-side timeout falls back
    # to the interpreter for the authoritative verdict.

    _RECURSIVE_FN_COST = 25

    def _fn_cost(self, name: str, scope: _Scope) -> int:
        key = (scope.prefix, name)
        cached = self._fn_costs.get(key)
        if cached is not None:
            return cached if cached > 0 else self._RECURSIVE_FN_COST
        fn = self.design.functions.get(scope.prefix, {}).get(name)
        if fn is None or fn.body is None:
            return 1
        self._fn_costs[key] = -1          # in-progress marker
        cost = 1 + self._stmt_cost(fn.body, scope)
        self._fn_costs[key] = cost
        return cost

    def _expr_cost(self, expr: ast.Expr | None, scope: _Scope) -> int:
        if expr is None:
            return 0
        cost = 1
        if isinstance(expr, ast.Unary):
            cost += self._expr_cost(expr.operand, scope)
        elif isinstance(expr, ast.Binary):
            cost += self._expr_cost(expr.left, scope) + \
                self._expr_cost(expr.right, scope)
        elif isinstance(expr, ast.Ternary):
            cost += self._expr_cost(expr.cond, scope) + \
                max(self._expr_cost(expr.if_true, scope),
                    self._expr_cost(expr.if_false, scope))
        elif isinstance(expr, (ast.Concat,)):
            cost += sum(self._expr_cost(p, scope) for p in expr.parts)
        elif isinstance(expr, ast.Repl):
            cost += self._expr_cost(expr.count, scope) + \
                sum(self._expr_cost(p, scope) for p in expr.parts)
        elif isinstance(expr, ast.Index):
            cost += self._expr_cost(expr.base, scope) + \
                self._expr_cost(expr.index, scope)
        elif isinstance(expr, ast.PartSelect):
            cost += self._expr_cost(expr.base, scope) + \
                self._expr_cost(expr.msb, scope) + \
                self._expr_cost(expr.lsb, scope)
        elif isinstance(expr, ast.FunctionCall):
            cost += sum(self._expr_cost(a, scope) for a in expr.args)
            if not expr.is_system:
                cost += self._fn_cost(expr.name, scope)
        return cost

    def _stmt_cost(self, stmt: ast.Stmt | None, scope: _Scope) -> int:
        """Steps the interpreter charges for one straight-line pass.

        Nested loops contribute only their entry cost — their bodies
        self-charge per iteration at runtime.
        """
        if stmt is None or not isinstance(stmt, ast.Stmt):
            return 1
        cost = 1
        if isinstance(stmt, ast.Block):
            cost += sum(self._stmt_cost(c, scope) for c in stmt.stmts
                        if isinstance(c, ast.Stmt))
        elif isinstance(stmt, (ast.BlockingAssign, ast.NonBlockingAssign)):
            cost += self._expr_cost(stmt.rhs, scope) + \
                self._expr_cost(stmt.delay, scope)
            lhs = stmt.lhs
            if isinstance(lhs, ast.Index):
                cost += self._expr_cost(lhs.index, scope)
            elif isinstance(lhs, ast.PartSelect):
                cost += self._expr_cost(lhs.msb, scope) + \
                    self._expr_cost(lhs.lsb, scope)
        elif isinstance(stmt, ast.IfStmt):
            cost += self._expr_cost(stmt.cond, scope) + \
                max(self._stmt_cost(stmt.then_stmt, scope),
                    self._stmt_cost(stmt.else_stmt, scope))
        elif isinstance(stmt, ast.CaseStmt):
            cost += self._expr_cost(stmt.expr, scope)
            cost += sum(self._expr_cost(e, scope)
                        for item in stmt.items for e in item.exprs)
            if stmt.items:
                cost += max(self._stmt_cost(item.stmt, scope)
                            for item in stmt.items)
        elif isinstance(stmt, ast.ForStmt):
            cost += self._stmt_cost(stmt.init, scope) + \
                self._expr_cost(stmt.cond, scope)
        elif isinstance(stmt, ast.WhileStmt):
            cost += self._expr_cost(stmt.cond, scope)
        elif isinstance(stmt, ast.RepeatStmt):
            cost += self._expr_cost(stmt.count, scope)
        elif isinstance(stmt, (ast.DelayStmt, ast.EventControlStmt)):
            cost += self._stmt_cost(stmt.stmt, scope) if stmt.stmt \
                else 0
            if isinstance(stmt, ast.DelayStmt):
                cost += self._expr_cost(stmt.delay, scope)
        elif isinstance(stmt, ast.WaitStmt):
            cost += self._expr_cost(stmt.cond, scope) + \
                (self._stmt_cost(stmt.stmt, scope) if stmt.stmt else 0)
        elif isinstance(stmt, ast.SysTaskCall):
            cost += sum(self._expr_cost(a, scope) for a in stmt.args
                        if not isinstance(a, ast.StringLiteral))
        return cost

    def _loop_cost(self, stmt, scope: _Scope) -> int:
        """Per-iteration charge for a loop statement."""
        if isinstance(stmt, ast.ForStmt):
            return (self._expr_cost(stmt.cond, scope)
                    + self._stmt_cost(stmt.body, scope)
                    + self._stmt_cost(stmt.step, scope))
        if isinstance(stmt, ast.WhileStmt):
            return (self._expr_cost(stmt.cond, scope)
                    + self._stmt_cost(stmt.body, scope))
        if isinstance(stmt, ast.RepeatStmt):
            return self._stmt_cost(stmt.body, scope)
        # forever: the interpreter adds a flat 50 on top of the body.
        return self._stmt_cost(stmt.body, scope) + 50

    # -- sensitivity / dependency analysis --------------------------------

    def _sens_entries(self, senslist: ast.SensList, scope: _Scope):
        """Static (slot, edge) watch entries for an explicit senslist."""
        if senslist.is_star:
            # @(*) below the top level of an always body: the interpreter
            # reports this at runtime; we cannot know the reads here.
            raise CompileUnsupported("@(*) below process top level")
        entries = []
        for item in senslist.items:
            signal_expr = item.signal
            if isinstance(signal_expr, ast.Identifier):
                resolved = scope.resolve(signal_expr.name)
                if resolved is None:
                    raise CompileUnsupported(
                        f"sensitivity on undeclared identifier "
                        f"'{signal_expr.name}'")
                slot, signal = resolved
            elif isinstance(signal_expr, ast.HierarchicalId):
                name = ".".join(signal_expr.parts)
                sig = self.design.signals.get(scope.prefix + name) or \
                    self.design.signals.get(name)
                if sig is None:
                    raise CompileUnsupported(
                        f"sensitivity on unknown hierarchical name "
                        f"'{name}'")
                slot, signal = self.slots[sig.name], sig
            else:
                raise CompileUnsupported(
                    "non-identifier sensitivity expression")
            if signal.is_array:
                raise CompileUnsupported(
                    f"sensitivity on memory '{signal.name}'")
            entries.append((slot, item.edge))
        if not entries:
            raise CompileUnsupported("event control with no signals")
        return _WatchSpec(entries, self.names, self.signals)

    def _expr_dep_slots(self, expr: ast.Expr, scope: _Scope,
                        acc: dict[int, None] | None = None) -> tuple:
        """Slots an expression reads — static twin of the interpreter's
        ``_expr_deps`` (including reads inside called function bodies)."""
        top = acc is None
        if acc is None:
            acc = {}
        if isinstance(expr, ast.Identifier):
            if scope.locals is not None and expr.name in scope.locals:
                pass
            else:
                resolved = scope.resolve(expr.name)
                if resolved is not None:
                    acc[resolved[0]] = None
        elif isinstance(expr, ast.HierarchicalId):
            name = ".".join(expr.parts)
            sig = self.design.signals.get(scope.prefix + name) or \
                self.design.signals.get(name)
            if sig is not None:
                acc[self.slots[sig.name]] = None
        elif isinstance(expr, ast.Unary):
            self._expr_dep_slots(expr.operand, scope, acc)
        elif isinstance(expr, ast.Binary):
            self._expr_dep_slots(expr.left, scope, acc)
            self._expr_dep_slots(expr.right, scope, acc)
        elif isinstance(expr, ast.Ternary):
            self._expr_dep_slots(expr.cond, scope, acc)
            self._expr_dep_slots(expr.if_true, scope, acc)
            self._expr_dep_slots(expr.if_false, scope, acc)
        elif isinstance(expr, ast.Concat):
            for part in expr.parts:
                self._expr_dep_slots(part, scope, acc)
        elif isinstance(expr, ast.Repl):
            self._expr_dep_slots(expr.count, scope, acc)
            for part in expr.parts:
                self._expr_dep_slots(part, scope, acc)
        elif isinstance(expr, ast.Index):
            self._expr_dep_slots(expr.base, scope, acc)
            self._expr_dep_slots(expr.index, scope, acc)
        elif isinstance(expr, ast.PartSelect):
            self._expr_dep_slots(expr.base, scope, acc)
            self._expr_dep_slots(expr.msb, scope, acc)
            self._expr_dep_slots(expr.lsb, scope, acc)
        elif isinstance(expr, ast.FunctionCall):
            for arg in expr.args:
                self._expr_dep_slots(arg, scope, acc)
            if not expr.is_system:
                fn = self.design.functions.get(scope.prefix, {}) \
                    .get(expr.name)
                if fn is not None and fn.body is not None:
                    self._stmt_read_slots(fn.body, scope, acc)
        if top:
            return tuple(acc)
        return ()

    def _stmt_read_slots(self, stmt: ast.Stmt, scope: _Scope,
                         acc: dict[int, None]) -> None:
        """Static twin of the interpreter's ``_stmt_reads``."""
        if isinstance(stmt, ast.Block):
            for child in stmt.stmts:
                if isinstance(child, ast.Stmt):
                    self._stmt_read_slots(child, scope, acc)
        elif isinstance(stmt, (ast.BlockingAssign, ast.NonBlockingAssign)):
            self._expr_dep_slots(stmt.rhs, scope, acc)
            lhs = stmt.lhs
            if isinstance(lhs, ast.Index):
                self._expr_dep_slots(lhs.index, scope, acc)
            elif isinstance(lhs, ast.PartSelect):
                self._expr_dep_slots(lhs.msb, scope, acc)
                self._expr_dep_slots(lhs.lsb, scope, acc)
        elif isinstance(stmt, ast.IfStmt):
            self._expr_dep_slots(stmt.cond, scope, acc)
            if stmt.then_stmt:
                self._stmt_read_slots(stmt.then_stmt, scope, acc)
            if stmt.else_stmt:
                self._stmt_read_slots(stmt.else_stmt, scope, acc)
        elif isinstance(stmt, ast.CaseStmt):
            self._expr_dep_slots(stmt.expr, scope, acc)
            for item in stmt.items:
                for expr in item.exprs:
                    self._expr_dep_slots(expr, scope, acc)
                if item.stmt:
                    self._stmt_read_slots(item.stmt, scope, acc)
        elif isinstance(stmt, ast.ForStmt):
            self._expr_dep_slots(stmt.cond, scope, acc)
            self._stmt_read_slots(stmt.init, scope, acc)
            self._stmt_read_slots(stmt.step, scope, acc)
            self._stmt_read_slots(stmt.body, scope, acc)
        elif isinstance(stmt, ast.WhileStmt):
            self._expr_dep_slots(stmt.cond, scope, acc)
            self._stmt_read_slots(stmt.body, scope, acc)
        elif isinstance(stmt, ast.RepeatStmt):
            self._expr_dep_slots(stmt.count, scope, acc)
            self._stmt_read_slots(stmt.body, scope, acc)
        elif isinstance(stmt, ast.ForeverStmt):
            self._stmt_read_slots(stmt.body, scope, acc)
        elif isinstance(stmt, (ast.DelayStmt, ast.EventControlStmt,
                               ast.WaitStmt)):
            if stmt.stmt:
                self._stmt_read_slots(stmt.stmt, scope, acc)
        elif isinstance(stmt, ast.SysTaskCall):
            for arg in stmt.args:
                if not isinstance(arg, ast.StringLiteral):
                    self._expr_dep_slots(arg, scope, acc)

    # -- processes --------------------------------------------------------

    def lower_proc(self, proc: Proc):
        self.stats["procs"] += 1
        if proc.kind == "assign":
            rhs_scope = _Scope(self, proc.rhs_prefix, proc.module)
            lhs_scope = _Scope(self, proc.lhs_prefix, proc.module)
            rhs = self.compile_expr(proc.rhs, rhs_scope)
            writer = self.compile_writer(proc.lhs, lhs_scope)
            deps = self._expr_dep_slots(proc.rhs, rhs_scope)
            self.stats["assigns"] += 1
            return _CAssign(rhs=rhs, writer=writer, deps=deps,
                            label=proc.label,
                            cost=1 + self._expr_cost(proc.rhs,
                                                     rhs_scope))
        scope = _Scope(self, proc.prefix, proc.module)
        if proc.kind == "initial":
            runner = self._branch(proc.body, scope)
            self.stats["coroutines"] += 1
            return _CCoroutine(genfunc=_proc_genfunc(runner, once=True),
                               label=proc.label)
        # always process
        body = proc.body
        if isinstance(body, ast.EventControlStmt):
            senslist = body.senslist
            if senslist.is_star:
                entries = self._star_entries(body, scope)
            else:
                entries = self._sens_entries(senslist, scope)
            body_cost = self._stmt_cost(body.stmt, scope) \
                if body.stmt is not None else 1
            if body.stmt is None or not _needs_coroutine(body.stmt):
                inner = self.compile_sync(body.stmt, scope)
                self.stats["reactive"] += 1
                return _CReactive(body=inner, entries=entries,
                                  label=proc.label, cost=1 + body_cost)
            inner = self.compile_coro(body.stmt, scope)

            def gen(rt, _e=entries, _b=inner, _k=50 + body_cost):
                while True:
                    yield ("wait", _e)
                    yield from _b(rt)
                    rt.charge(_k)
            self.stats["coroutines"] += 1
            return _CCoroutine(genfunc=_wrap_finish(gen),
                               label=proc.label)
        # always without an event control at the top: loop the body.
        runner = self._branch(body, scope)
        loop_cost = 50 + self._stmt_cost(body, scope)
        self.stats["coroutines"] += 1
        return _CCoroutine(genfunc=_proc_genfunc(runner, once=False,
                                                 loop_cost=loop_cost),
                           label=proc.label)

    def _star_entries(self, body: ast.EventControlStmt, scope: _Scope):
        """Expand @(*) into level entries over every signal the body
        reads — the static twin of ``_prepare_star_processes``."""
        reads: dict[int, None] = {}
        if body.stmt is not None:
            self._stmt_read_slots(body.stmt, scope, reads)
        if not reads:
            raise CompileUnsupported("@(*) with an empty read set")
        names = sorted(self.names[slot] for slot in reads)
        entries = []
        for name in names:
            signal = self.design.signals[name]
            if signal.is_array:
                raise CompileUnsupported(
                    f"sensitivity on memory '{name}'")
            entries.append((self.slots[name], None))
        return _WatchSpec(entries, self.names, self.signals)


def _run_branch(rt, branch):
    is_coro, closure = branch
    if closure is None:
        return
    if is_coro:
        yield from closure(rt)
    else:
        closure(rt, None)


def _proc_genfunc(runner, once: bool, loop_cost: int = 51):
    """Wrap a compiled (is_coro, closure) body as a process generator."""
    is_coro, closure = runner

    def gen(rt):
        try:
            if once:
                if closure is not None:
                    if is_coro:
                        yield from closure(rt)
                    else:
                        closure(rt, None)
            else:
                while True:
                    if closure is not None:
                        if is_coro:
                            yield from closure(rt)
                        else:
                            closure(rt, None)
                    rt.charge_always(loop_cost)
        except _Finish:
            pass
    return gen


def _wrap_finish(genfunc):
    def gen(rt):
        try:
            yield from genfunc(rt)
        except _Finish:
            pass
    return gen


def _needs_coroutine(stmt: ast.Stmt | None) -> bool:
    """True when executing ``stmt`` may suspend the process."""
    if stmt is None:
        return False
    if isinstance(stmt, (ast.DelayStmt, ast.EventControlStmt,
                         ast.WaitStmt)):
        return True
    if isinstance(stmt, ast.BlockingAssign):
        return stmt.delay is not None
    if isinstance(stmt, ast.Block):
        return any(_needs_coroutine(c) for c in stmt.stmts
                   if isinstance(c, ast.Stmt))
    if isinstance(stmt, ast.IfStmt):
        return _needs_coroutine(stmt.then_stmt) or \
            _needs_coroutine(stmt.else_stmt)
    if isinstance(stmt, ast.CaseStmt):
        return any(_needs_coroutine(item.stmt) for item in stmt.items)
    if isinstance(stmt, (ast.ForStmt, ast.WhileStmt, ast.RepeatStmt,
                         ast.ForeverStmt)):
        return _needs_coroutine(stmt.body)
    return False


# --------------------------------------------------------------------------
# Compiled artefacts
# --------------------------------------------------------------------------

class _CAssign:
    __slots__ = ("rhs", "writer", "deps", "label", "index", "cost")

    def __init__(self, rhs, writer, deps, label, cost=1):
        self.rhs = rhs
        self.writer = writer
        self.deps = deps
        self.label = label
        self.index = -1
        self.cost = cost


class _CReactive:
    __slots__ = ("body", "entries", "label", "cost")

    def __init__(self, body, entries, label, cost=1):
        self.body = body
        self.entries = entries
        self.label = label
        self.cost = cost


class _CCoroutine:
    __slots__ = ("genfunc", "label")

    def __init__(self, genfunc, label):
        self.genfunc = genfunc
        self.label = label


class _CState:
    """A live coroutine process in one simulation run."""

    __slots__ = ("gen", "label")

    def __init__(self, gen, label):
        self.gen = gen
        self.label = label


class _CWaiter:
    """A parked process: static per-slot edge sets, fired flag."""

    __slots__ = ("event", "edges", "fired")

    def __init__(self, event, edges):
        self.event = event           # ("resume", state) | ("react", proc)
        self.edges = edges           # slot -> tuple of edges
        self.fired = False


class _WatchSpec:
    """Statically precomputed sensitivity: per-slot edge sets.

    Built once at lowering time so parking a process allocates only the
    :class:`_CWaiter` itself — no per-cycle dict building.
    ``array_name`` marks a dependency on a memory, which the interpreter
    reports when it evaluates the sensitivity item; parking raises the
    same error.
    """

    __slots__ = ("edges", "slots", "array_name")

    def __init__(self, entries, names, signals):
        edges: dict[int, list] = {}
        self.array_name = None
        for slot, edge in entries:
            if signals[slot].is_array and self.array_name is None:
                self.array_name = names[slot]
            edges.setdefault(slot, []).append(edge)
        self.edges = {slot: tuple(items) for slot, items in edges.items()}
        self.slots = tuple(self.edges)


@dataclass
class CompiledDesign:
    """A Design lowered to closures; reusable across simulation runs."""

    design: Design
    top: str
    names: list[str]
    slots: dict[str, int]
    init_store: list[V.Value]
    array_slots: tuple[int, ...]
    procs: list
    stats: dict

    def simulator(self, max_delta: int = 50_000,
                  step_budget: int = 5_000_000) -> "CompiledSimulator":
        return CompiledSimulator(self, max_delta=max_delta,
                                 step_budget=step_budget)


def compile_design(design: Design) -> CompiledDesign:
    """Lower ``design`` once into a reusable :class:`CompiledDesign`.

    Raises :class:`CompileUnsupported` when any construct cannot be
    lowered faithfully; the caller is expected to fall back to the
    interpreter.
    """
    lower = _Lower(design)
    procs = []
    n_assigns = 0
    for proc in design.procs:
        lowered = lower.lower_proc(proc)
        if isinstance(lowered, _CAssign):
            lowered.index = n_assigns
            n_assigns += 1
        procs.append(lowered)
    init_store = [signal.value for signal in lower.signals]
    array_slots = tuple(i for i, signal in enumerate(lower.signals)
                        if signal.is_array)
    backend_stats().compiles += 1
    return CompiledDesign(design=design, top=design.top,
                          names=lower.names, slots=lower.slots,
                          init_store=init_store,
                          array_slots=array_slots, procs=procs,
                          stats=dict(lower.stats))


# --------------------------------------------------------------------------
# Runtime
# --------------------------------------------------------------------------

class CompiledSimulator:
    """Execute a :class:`CompiledDesign` with interpreter-identical
    scheduling (stratified active/NBA regions, delta limits)."""

    def __init__(self, compiled: CompiledDesign, max_delta: int = 50_000,
                 step_budget: int = 5_000_000):
        self.compiled = compiled
        self.design = compiled.design
        self.time = 0
        self.finished = False
        self.display_lines: list[str] = []
        self.tracer = None
        self._steps = 0
        self._step_budget = step_budget
        self._max_delta = max_delta
        self._delta = 0
        self._current_label: str | None = None
        self._heap: list[tuple[int, int, object]] = []
        self._seq = 0
        self._active: deque = deque()
        self._nba: list = []
        self._rand_state = 0x2545F491
        self.store: list[V.Value] = list(compiled.init_store)
        self.arrays: dict[int, dict[int, V.Value]] = {
            slot: {} for slot in compiled.array_slots}
        n = len(self.store)
        self._assign_watchers: list[list] = [[] for _ in range(n)]
        self._slot_waiters: list[list] = [[] for _ in range(n)]
        self._assigns: list[_CAssign] = []
        self._assign_pending: set[int] = set()
        self._build()

    # -- construction ----------------------------------------------------

    def _build(self) -> None:
        for proc in self.compiled.procs:
            if isinstance(proc, _CAssign):
                self._assigns.append(proc)
                for slot in proc.deps:
                    self._assign_watchers[slot].append(proc.index)
                self._assign_pending.add(proc.index)
                self._active.append(("assign", proc.index))
            elif isinstance(proc, _CReactive):
                # Arm through the event queue so processes scheduled
                # before this one can fire events it must not yet see —
                # exactly like the interpreter's first generator resume.
                self._active.append(("arm", proc))
            else:
                state = _CState(proc.genfunc(self), proc.label)
                self._active.append(("resume", state))
        # Interned per-assign event tuples: set_slot re-queues these on
        # every dependency change instead of allocating fresh 2-tuples.
        self._assign_events = [("assign", proc.index)
                               for proc in self._assigns]

    # -- budget ----------------------------------------------------------

    def charge(self, n: int = 1) -> None:
        self._steps += n
        if self._steps > self._step_budget:
            raise SimulationTimeout("simulation step budget exhausted",
                                    process=self._current_label,
                                    delta=self._delta)

    def charge_always(self, cost: int = 51) -> None:
        self._steps += cost
        if self._steps > self._step_budget:
            raise SimulationTimeout(
                "always block without delay or event control",
                process=self._current_label, delta=self._delta)

    # -- signal store ----------------------------------------------------

    def set_slot(self, slot: int, value: V.Value) -> None:
        old = self.store[slot]
        # Inlined Value.__eq__ — this is the hottest comparison in the
        # runtime (every write of every signal).
        if old.val == value.val and old.xz == value.xz \
                and old.width == value.width:
            return
        self.store[slot] = value
        if self.tracer is not None:
            self.tracer.record(self.compiled.names[slot], self.time,
                               value)
        # Notify logic inlined (formerly _notify): this runs on nearly
        # every slot write, and the call overhead alone was measurable.
        watchers = self._assign_watchers[slot]
        if watchers:
            pending = self._assign_pending
            active = self._active
            events = self._assign_events
            for index in watchers:
                if index not in pending:
                    pending.add(index)
                    active.append(events[index])
        waiters = self._slot_waiters[slot]
        if not waiters:
            return
        # Inlined edge detection over the canonical (val, xz) encoding:
        # bit0 is '1' iff val&1 (xz bits of val are zeroed), 'x' iff
        # xz&1.  Semantics identical to format.edge_fired, which the
        # differential harness pins.
        prev1 = old.val & 1
        prevx = old.xz & 1
        new1 = value.val & 1
        newx = value.xz & 1
        still = []
        active = self._active
        for waiter in waiters:
            if waiter.fired:
                continue
            fired = False
            for edge in waiter.edges[slot]:
                if edge is None:
                    fired = True          # any change (old != new here)
                    break
                if edge == "posedge":
                    if (new1 and not prev1) or \
                            (newx and not prev1 and not prevx):
                        fired = True
                        break
                elif (not new1 and not newx and (prev1 or prevx)) or \
                        (newx and prev1):
                    fired = True          # negedge
                    break
            if fired:
                waiter.fired = True
                active.append(waiter.event)
            else:
                still.append(waiter)
        self._slot_waiters[slot] = still

    def set_element(self, slot: int, index: int, value: V.Value) -> None:
        array = self.arrays[slot]
        signal = self.design.signals[self.compiled.names[slot]]
        if array.get(index, V.Value.unknown(signal.width)) == value:
            return
        array[index] = value
        self._notify_array(slot)

    def _notify_array(self, slot: int) -> None:
        for index in self._assign_watchers[slot]:
            if index not in self._assign_pending:
                self._assign_pending.add(index)
                self._active.append(("assign", index))
        if self._slot_waiters[slot]:
            # The interpreter re-evaluates sensitivity items on notify;
            # an identifier item naming a memory raises there.
            name = self.compiled.names[slot]
            raise SimulationError(
                f"memory '{name}' used without an index")

    # -- scheduler -------------------------------------------------------

    def _schedule(self, delay: int, action) -> None:
        self._seq += 1
        heapq.heappush(self._heap,
                       (self.time + (delay if delay > 0 else 0),
                        self._seq, action))

    def schedule_nba(self, ticks: int, writer, value, frame) -> None:
        self._schedule(ticks, ("nba_future", (writer, value, frame)))

    def _park(self, spec: _WatchSpec, event) -> None:
        if spec.array_name is not None:
            raise SimulationError(
                f"memory '{spec.array_name}' used without an index")
        waiter = _CWaiter(event, spec.edges)
        waiters = self._slot_waiters
        for slot in spec.slots:
            waiters[slot].append(waiter)

    def run(self, max_time: int = 1_000_000) -> None:
        """Run until $finish, event exhaustion, or ``max_time``."""
        active = self._active
        max_delta = self._max_delta
        step_budget = self._step_budget
        while True:
            delta = 0
            while active or self._nba:
                while active:
                    delta += 1
                    self._delta = delta
                    if delta > max_delta:
                        raise SimulationTimeout(
                            f"delta overflow at time {self.time}",
                            process=self._current_label, delta=delta)
                    event = active.popleft()
                    if self.finished:
                        return
                    kind = event[0]
                    if kind == "assign":
                        proc = self._assigns[event[1]]
                        self._current_label = proc.label
                        self._assign_pending.discard(event[1])
                        self._steps += proc.cost
                        if self._steps > step_budget:
                            raise SimulationTimeout(
                                "simulation step budget exhausted",
                                process=proc.label, delta=delta)
                        proc.writer(self, None, proc.rhs(self, None))
                    elif kind == "resume":
                        state = event[1]
                        self._current_label = state.label
                        try:
                            request = next(state.gen)
                        except (StopIteration, _Finish):
                            continue
                        # Re-park/reschedule with the *same* event tuple
                        # — identical content, one allocation per
                        # process instead of one per suspension.
                        if request[0] == "delay":
                            self._schedule(request[1], event)
                        else:   # ("wait", spec)
                            self._park(request[1], event)
                    elif kind == "react":
                        proc = event[1]
                        self._current_label = proc.label
                        self._steps += proc.cost
                        if self._steps > step_budget:
                            raise SimulationTimeout(
                                "simulation step budget exhausted",
                                process=proc.label, delta=delta)
                        try:
                            if proc.body is not None:
                                proc.body(self, None)
                        except _Finish:
                            continue   # process ends; never re-arms
                        self._park(proc.entries, event)
                    else:   # "arm"
                        self._current_label = event[1].label
                        self._park(event[1].entries,
                                   ("react", event[1]))
                if self.finished:
                    return
                if self._nba:
                    updates, self._nba = self._nba, []
                    for writer, value, frame in updates:
                        writer(self, frame, value)
            if self.finished or not self._heap:
                return
            next_time = self._heap[0][0]
            if next_time > max_time:
                return
            self.time = next_time
            while self._heap and self._heap[0][0] == next_time:
                _, _, action = heapq.heappop(self._heap)
                if action[0] == "nba_future":
                    self._nba.append(action[1])
                else:
                    active.append(action)

    # -- tracing / introspection -----------------------------------------

    def enable_tracing(self, filename: str = "dump.vcd"):
        from .vcd import Tracer
        if self.tracer is None:
            self.tracer = Tracer(design=self.design, filename=filename)
            self.snapshot_tracer()
        else:
            self.tracer.filename = filename
        return self.tracer

    def snapshot_tracer(self) -> None:
        values = {name: self.store[slot]
                  for name, slot in self.compiled.slots.items()}
        self.tracer.snapshot_initial(self.time, values=values)

    def value_of(self, name: str) -> V.Value:
        """Current value of a (hierarchical) signal name."""
        signal = self.design.signal(name)
        slot = self.compiled.slots[signal.name]
        if signal.is_array:
            return signal.value
        return self.store[slot]


# --------------------------------------------------------------------------
# Content-keyed compiled-design cache
# --------------------------------------------------------------------------

def source_digest(source_text: str, top: str | None) -> str:
    """Content key of one compile request: source text + requested top."""
    hasher = hashlib.sha256()
    hasher.update(str(SIM_COMPILE_VERSION).encode())
    hasher.update(b"\x1f")
    hasher.update((top or "").encode())
    hasher.update(b"\x1f")
    hasher.update(source_text.encode())
    return hasher.hexdigest()


def _cache_fingerprint() -> str:
    # Fold in the Python major.minor: generated-source artefacts are
    # Python modules, so an interpreter upgrade must invalidate them —
    # and the verdict layer gets the same guard (an "unsupported"
    # verdict can flip when the lowerer runs on a newer Python).
    pyv = f"{sys.version_info[0]}.{sys.version_info[1]}"
    return hashlib.sha256(
        f"repro.sim.compile\x1f{SIM_COMPILE_VERSION}\x1f{pyv}"
        .encode()).hexdigest()


class _MergeOnFlushCache(ManifestCache):
    """ManifestCache that merges the on-disk index before rewriting.

    Concurrent pool workers each hold a partial in-memory view, so a
    plain whole-manifest rewrite would drop the other workers' entries.
    Entries are content-addressed and idempotent, so merging the
    on-disk index first makes the disjoint-digest case lossless (the
    residual read-modify-write race only costs a future recompute).
    """

    def flush(self) -> None:
        try:
            with open(self._manifest_path, encoding="utf-8") as handle:
                manifest = json.load(handle)
        except (OSError, ValueError):
            manifest = None
        if (manifest is not None
                and manifest.get("version") == self.version
                and manifest.get("fingerprint") == self.fingerprint):
            for slot, entry in manifest.get(self.entries_field,
                                            {}).items():
                self._entries.setdefault(slot, entry)
        super().flush()


class _CompileMetaCache(_MergeOnFlushCache):
    """Persistent compile-verdict layer (ManifestCache of JSON blobs).

    Closures cannot cross a process boundary or survive a restart, so
    the only verdict worth persisting is *unsupported* (+ reason): warm
    workers then skip doomed compile attempts without re-parsing the
    source.  A "supported" verdict would save nothing — the design
    must be parsed and lowered again regardless — so none is written,
    which keeps a sweep over thousands of one-shot candidates from
    churning entry files.
    """

    version = SIM_COMPILE_VERSION
    subdir = "designs"
    file_prefix = "design-"
    file_suffix = ".json"

    def _encode(self, payload: dict) -> str:
        return json.dumps(payload, ensure_ascii=False, sort_keys=True) \
            + "\n"

    def _decode(self, text: str) -> dict:
        blob = json.loads(text)
        if not isinstance(blob, dict) or "supported" not in blob:
            raise ValueError("unrecognised compile-verdict blob")
        return blob


class _GenSourceCache(_MergeOnFlushCache):
    """Persistent generated-source layer: one ``.py`` file per design.

    Unlike closures, the codegen backend's artefact is a plain module
    source string — it survives a process boundary, so warm pool
    workers ``exec`` it instead of re-lowering.  Entries are keyed by
    :func:`repro.sim.codegen.codegen_key` (source digest + codegen
    version + Python major.minor), stored verbatim as importable
    Python text for debuggability.
    """

    version = SIM_COMPILE_VERSION
    subdir = "entries"
    file_prefix = "gen-"
    file_suffix = ".py"

    def _encode(self, payload: str) -> str:
        return payload

    def _decode(self, text: str) -> str:
        if "def build" not in text:
            raise ValueError("unrecognised generated-source blob")
        return text


class CompiledDesignCache:
    """Two-layer cache of compiled designs, keyed by source digest.

    * **in-memory**: an LRU of artefacts — closure
      :class:`CompiledDesign` objects under the bare digest, loaded
      codegen artefacts under a ``g\\x1f`` prefix — the layer that
      makes ``repro evaluate`` compile each testbench/reference pair
      once across models, levels and samples;
    * **persistent** (optional, ``root=``): a manifest-indexed store
      of *unsupported* verdicts plus a generated-source store
      (``<root>/gen``) of importable Python modules emitted by
      :mod:`repro.sim.codegen` — the layer that lets a warm pool
      worker skip parse, elaborate *and* lowering entirely.  Entries
      whose key no longer matches (source edited,
      :data:`SIM_COMPILE_VERSION` bumped, or the Python major.minor
      changed) degrade to misses.
    """

    def __init__(self, maxsize: int = 256, root: str | None = None):
        self._lru: LRUCache[str, object] = LRUCache(maxsize)
        self._meta = (_CompileMetaCache(root, _cache_fingerprint())
                      if root else None)
        self._gen = (_GenSourceCache(os.path.join(root, "gen"),
                                     _cache_fingerprint())
                     if root else None)
        # In-memory only: codegen-unsupported designs may still lower
        # fine on the closure backend, so this memo never reaches the
        # shared verdict layer.
        self._codegen_unsupported: dict[str, str] = {}

    def get(self, digest: str) -> CompiledDesign | None:
        return self._lru.get(digest)

    def put(self, digest: str, compiled: CompiledDesign) -> None:
        # In-memory only: a persisted "supported" verdict saves no work
        # (the artefact must be re-lowered anyway), so the meta layer
        # records unsupported verdicts exclusively.
        self._lru.put(digest, compiled)

    def verdict(self, digest: str) -> dict | None:
        """Persisted compile verdict for ``digest`` (or None)."""
        if self._meta is None:
            return None
        return self._meta.lookup(digest[:16], digest)

    def record_unsupported(self, digest: str, reason: str) -> None:
        """Persist a fallback verdict (the only kind worth keeping)."""
        if self._meta is not None:
            self._meta.store(digest[:16], digest, {
                "supported": False, "reason": reason, "top": None,
                "stats": {}})
            self._meta.flush()

    # -- codegen artefacts ------------------------------------------------

    def get_codegen(self, digest: str):
        """In-memory loaded codegen artefact for ``digest`` (or None)."""
        return self._lru.get("g\x1f" + digest)

    def put_codegen(self, digest: str, compiled) -> None:
        self._lru.put("g\x1f" + digest, compiled)

    def gen_source(self, digest: str, key: str) -> str | None:
        """Persisted generated-module source for ``digest`` (or None).

        ``key`` is :func:`repro.sim.codegen.codegen_key` — the digest
        extended with the codegen version and Python major.minor, so a
        stale artefact can never be exec'd by a newer interpreter.
        """
        if self._gen is None:
            return None
        return self._gen.lookup(digest[:16], key)

    def put_gen_source(self, digest: str, key: str, source: str) -> None:
        if self._gen is not None:
            self._gen.store(digest[:16], key, source)
            self._gen.flush()

    def gen_counters(self) -> dict[str, int]:
        """Hit/miss counters of the persistent gen-source layer."""
        if self._gen is None:
            return {"hits": 0, "misses": 0}
        return {"hits": self._gen.hits, "misses": self._gen.misses}

    def codegen_unsupported(self, digest: str) -> str | None:
        return self._codegen_unsupported.get(digest)

    def record_codegen_unsupported(self, digest: str,
                                   reason: str) -> None:
        if len(self._codegen_unsupported) < 4096:
            self._codegen_unsupported[digest] = reason

    def clear(self) -> None:
        self._lru.clear()
        self._codegen_unsupported.clear()


#: Process-wide default cache (in-memory only until configured).
#: Guarded by ``_CACHE_LOCK``: daemon worker threads read it while any
#: thread may call :func:`configure_design_cache` — the swap must be
#: atomic, and each run binds the cache reference exactly once.
_CACHE_LOCK = threading.Lock()
_DESIGN_CACHE = CompiledDesignCache()


def design_cache() -> CompiledDesignCache:
    with _CACHE_LOCK:
        return _DESIGN_CACHE


def configure_design_cache(maxsize: int = 256,
                           root: str | None = None) -> CompiledDesignCache:
    """Replace the process-wide cache (e.g. to attach a persistent
    verdict layer under ``root``); returns the new cache.  The swap is
    atomic under a module lock: in-flight ``run_simulation`` calls
    bound the old cache once at entry and finish safely against it."""
    global _DESIGN_CACHE
    cache = CompiledDesignCache(maxsize=maxsize, root=root)
    with _CACHE_LOCK:
        _DESIGN_CACHE = cache
    return cache
