"""VCD (Value Change Dump) waveform output for the simulator.

``$dumpfile``/``$dumpvars`` in a testbench — or ``trace=True`` on
:func:`repro.sim.run_simulation` — turn on a :class:`Tracer` that records
every signal change; :meth:`Tracer.to_vcd` renders the standard VCD text
any waveform viewer (GTKWave etc.) opens.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .elaborate import Design
from .values import Value

_IDCHARS = "!\"#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ"


def _idcode(index: int) -> str:
    """Compact VCD identifier codes (base-59 over printable chars)."""
    out = ""
    index += 1
    while index:
        index, rem = divmod(index - 1, len(_IDCHARS))
        out = _IDCHARS[rem] + out
    return out


@dataclass
class _Change:
    time: int
    value: Value


@dataclass
class Tracer:
    """Records signal changes during simulation."""

    design: Design
    filename: str = "dump.vcd"
    changes: dict[str, list[_Change]] = field(default_factory=dict)
    enabled: bool = True

    def record(self, name: str, time: int, value: Value) -> None:
        if not self.enabled:
            return
        history = self.changes.setdefault(name, [])
        if history and history[-1].time == time:
            history[-1] = _Change(time, value)
        else:
            history.append(_Change(time, value))

    def snapshot_initial(self, time: int = 0,
                         values: dict[str, Value] | None = None) -> None:
        """Record the current value of every scalar/vector signal.

        ``values`` overrides the design's stored values — the compiled
        backend keeps its signal store outside the (shared, cached)
        :class:`Design` and passes its live values here.
        """
        for name, signal in self.design.signals.items():
            if signal.is_array:
                continue
            value = signal.value if values is None else \
                values.get(name, signal.value)
            self.record(name, time, value)

    # -- rendering -----------------------------------------------------------

    def to_vcd(self, timescale: str = "1ns") -> str:
        traced = sorted(self.changes)
        codes = {name: _idcode(i) for i, name in enumerate(traced)}
        lines = ["$date", "  repro.sim trace", "$end",
                 "$version", "  repro VCD tracer", "$end",
                 f"$timescale {timescale} $end"]
        # Scope tree from hierarchical names.
        lines.append(f"$scope module {self.design.top} $end")
        open_scopes: list[str] = []

        def close_to(depth: int) -> None:
            while len(open_scopes) > depth:
                open_scopes.pop()
                lines.append("$upscope $end")

        for name in traced:
            *scopes, leaf = name.split(".")
            common = 0
            for a, b in zip(open_scopes, scopes):
                if a != b:
                    break
                common += 1
            close_to(common)
            for scope in scopes[common:]:
                open_scopes.append(scope)
                lines.append(f"$scope module {scope} $end")
            signal = self.design.signals[name]
            width = signal.width
            ref = leaf if width == 1 else \
                f"{leaf} [{signal.msb}:{signal.lsb}]"
            lines.append(f"$var wire {width} {codes[name]} {ref} $end")
        close_to(0)
        lines.append("$upscope $end")
        lines.append("$enddefinitions $end")

        # Merge changes into a single time-ordered stream.
        events: list[tuple[int, str, Value]] = []
        for name, history in self.changes.items():
            for change in history:
                events.append((change.time, codes[name], change.value))
        events.sort(key=lambda item: (item[0], item[1]))
        current_time = None
        for time, code, value in events:
            if time != current_time:
                lines.append(f"#{time}")
                current_time = time
            lines.append(_format_change(code, value))
        return "\n".join(lines) + "\n"


def _format_change(code: str, value: Value) -> str:
    if value.width == 1:
        return f"{value.bit(0)}{code}"
    bits = "".join(value.bit(i) for i in reversed(range(value.width)))
    return f"b{bits} {code}"
