"""Four-state bit-vector values for the Verilog simulator.

A :class:`Value` is a fixed-width vector where every bit is 0, 1 or unknown
(``x``/``z`` are conflated into a single *unknown* state — enough for the
RTL subset our benchmarks exercise).  Representation: ``val`` holds the
known bit pattern, ``xz`` is a mask with 1 for every unknown bit.  Bits of
``val`` under the ``xz`` mask are kept at 0 so equal values compare equal.

Semantics follow IEEE 1364 pragmatically:

* bitwise ops propagate unknowns per-bit with dominance (``0 & x = 0``,
  ``1 | x = 1``);
* arithmetic / relational ops with any unknown operand bit yield an
  all-unknown result (what commercial simulators do);
* assignments truncate or zero-extend to the target width.
"""

from __future__ import annotations


def _mask(width: int) -> int:
    return (1 << width) - 1


class Value:
    """Fixed-width four-state vector.

    A hand-rolled ``__slots__`` class (not a dataclass): Value
    construction is the single hottest allocation in both simulator
    backends, and the plain ``__init__`` below is ~2x faster than the
    frozen-dataclass ``object.__setattr__`` path.  Instances are
    treated as immutable everywhere.
    """

    __slots__ = ("width", "val", "xz")

    def __init__(self, width: int, val: int, xz: int = 0):
        self.width = width
        if xz:
            mask = (1 << width) - 1
            xz &= mask
            self.xz = xz
            # Keep unknown bits of val at zero so (val, xz) is canonical.
            self.val = val & mask & ~xz
        else:
            self.xz = 0
            self.val = val & ((1 << width) - 1)

    def __eq__(self, other):
        if not isinstance(other, Value):
            return NotImplemented
        return (self.width == other.width and self.val == other.val
                and self.xz == other.xz)

    def __ne__(self, other):
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self):
        return hash((self.width, self.val, self.xz))

    def __repr__(self):
        return f"Value(width={self.width}, val={self.val}, xz={self.xz})"

    # -- constructors --------------------------------------------------------

    @staticmethod
    def of(value: int, width: int) -> Value:
        """A fully-known value (two's complement wrap into ``width`` bits)."""
        return Value(width=width, val=value)

    @staticmethod
    def unknown(width: int) -> Value:
        """All bits unknown (the power-up state of a reg)."""
        cached = _UNKNOWN.get(width)
        if cached is None:
            cached = Value(width=width, val=0, xz=_mask(width))
            _UNKNOWN[width] = cached
        return cached

    # -- predicates ------------------------------------------------------

    @property
    def has_unknown(self) -> bool:
        return self.xz != 0

    @property
    def is_true(self) -> bool:
        """Verilog truthiness: any known 1 bit (x-only vectors are false)."""
        return self.val != 0

    @property
    def is_definite_zero(self) -> bool:
        return self.val == 0 and self.xz == 0

    def bit(self, index: int) -> str:
        """Return '0', '1' or 'x' for bit ``index`` (out of range → 'x')."""
        if index < 0 or index >= self.width:
            return "x"
        if (self.xz >> index) & 1:
            return "x"
        return "1" if (self.val >> index) & 1 else "0"

    # -- conversions ---------------------------------------------------------

    def to_int(self, signed: bool = False) -> int:
        """Interpret the known bits as an integer (unknown bits read as 0)."""
        if signed and self.width > 0 and (self.val >> (self.width - 1)) & 1:
            return self.val - (1 << self.width)
        return self.val

    def resized(self, width: int, signed: bool = False) -> Value:
        """Truncate or extend to ``width`` (sign-extends when ``signed``)."""
        if width == self.width:
            return self
        if width < self.width:
            return Value(width=width, val=self.val, xz=self.xz)
        if self.width == 0:
            return Value.unknown(width)
        top = self.width - 1
        extend_x = (self.xz >> top) & 1
        extend_v = (self.val >> top) & 1 if signed else 0
        ext_mask = _mask(width) ^ _mask(self.width)
        val = self.val | (ext_mask if (signed and extend_v and not extend_x)
                          else 0)
        xz = self.xz | (ext_mask if (signed and extend_x) else 0)
        return Value(width=width, val=val, xz=xz)

    def __str__(self) -> str:
        bits = "".join(self.bit(i) for i in reversed(range(self.width)))
        return f"{self.width}'b{bits}" if self.width else "0'b"

    # -- bit access ------------------------------------------------------

    def select_bit(self, index: Value | int) -> Value:
        if type(index) is Value:
            if index.xz:
                return _BX
            index = index.val
        if index < 0 or index >= self.width:
            return _BX
        if (self.xz >> index) & 1:
            return _BX
        return _B1 if (self.val >> index) & 1 else _B0

    def select_range(self, msb: int, lsb: int) -> Value:
        """Select bits [msb:lsb] (already normalised to 0-based offsets)."""
        if lsb > msb:
            msb, lsb = lsb, msb
        width = msb - lsb + 1
        if lsb >= self.width:
            return Value.unknown(width)
        return Value(width=width, val=self.val >> lsb, xz=self.xz >> lsb) \
            if msb < self.width else \
            concat([Value.unknown(msb - self.width + 1),
                    Value(width=self.width - lsb, val=self.val >> lsb,
                          xz=self.xz >> lsb)])

    def with_bits(self, msb: int, lsb: int, new: Value) -> Value:
        """Return a copy with bits [msb:lsb] replaced by ``new``."""
        if lsb > msb:
            msb, lsb = lsb, msb
        field_width = msb - lsb + 1
        new = new.resized(field_width)
        keep = _mask(self.width) & ~(_mask(field_width) << lsb)
        val = (self.val & keep) | ((new.val << lsb) & _mask(self.width))
        xz = (self.xz & keep) | ((new.xz << lsb) & _mask(self.width))
        return Value(width=self.width, val=val, xz=xz)


#: Shared all-unknown values per width (immutable, so safe to share).
_UNKNOWN: dict[int, Value] = {}

#: Interned single-bit values — 1-bit vectors have exactly three
#: canonical states, and they are by far the hottest allocation in both
#: simulator backends (bit selects, comparisons, logic ops, 1-bit regs).
_B0 = Value(1, 0)
_B1 = Value(1, 1)
_BX = Value(1, 0, 1)
_UNKNOWN[1] = _BX


# --------------------------------------------------------------------------
# Literal parsing
# --------------------------------------------------------------------------

_BASE_BITS = {"b": 1, "o": 3, "h": 4}


def from_literal(text: str) -> Value:
    """Build a Value from Verilog literal text (``8'hFF``, ``'b1x0``, ``42``).

    Unsized literals get the Verilog default width of 32.
    """
    text = text.replace("_", "")
    if "'" not in text:
        return Value.of(int(text), 32)
    size_part, rest = text.split("'", 1)
    rest = rest.strip()
    if rest[:1] in ("s", "S"):
        rest = rest[1:]
    base = rest[0].lower()
    digits = rest[1:].strip()
    if base == "d":
        digits_clean = digits.replace("?", "x")
        if set(digits_clean.lower()) & {"x", "z"}:
            width = int(size_part) if size_part else 32
            return Value.unknown(width)
        value = int(digits_clean)
        width = int(size_part) if size_part else 32
        return Value.of(value, width)
    bits_per_digit = _BASE_BITS[base]
    val = 0
    xz = 0
    for ch in digits.lower():
        val <<= bits_per_digit
        xz <<= bits_per_digit
        if ch in ("x", "z", "?"):
            xz |= _mask(bits_per_digit)
        else:
            val |= int(ch, 16)
    width = int(size_part) if size_part else max(len(digits) * bits_per_digit,
                                                 1)
    return Value(width=width, val=val, xz=xz)


# --------------------------------------------------------------------------
# Operators
# --------------------------------------------------------------------------

def _arith_width(a: Value, b: Value) -> int:
    return max(a.width, b.width)


def _all_unknown_if(a: Value, b: Value, width: int) -> Value | None:
    if a.has_unknown or b.has_unknown:
        return Value.unknown(width)
    return None


def add(a: Value, b: Value) -> Value:
    width = a.width if a.width >= b.width else b.width
    if a.xz or b.xz:
        return Value.unknown(width)
    return Value(width, a.val + b.val)


def sub(a: Value, b: Value) -> Value:
    width = a.width if a.width >= b.width else b.width
    if a.xz or b.xz:
        return Value.unknown(width)
    return Value(width, a.val - b.val)


def mul(a: Value, b: Value) -> Value:
    width = a.width if a.width >= b.width else b.width
    if a.xz or b.xz:
        return Value.unknown(width)
    return Value(width, a.val * b.val)


def div(a: Value, b: Value) -> Value:
    width = _arith_width(a, b)
    if a.has_unknown or b.has_unknown or b.val == 0:
        return Value.unknown(width)
    return Value.of(a.val // b.val, width)


def mod(a: Value, b: Value) -> Value:
    width = _arith_width(a, b)
    if a.has_unknown or b.has_unknown or b.val == 0:
        return Value.unknown(width)
    return Value.of(a.val % b.val, width)


def power(a: Value, b: Value) -> Value:
    width = _arith_width(a, b)
    unknown = _all_unknown_if(a, b, width)
    if unknown:
        return unknown
    return Value.of(pow(a.val, b.val, 1 << width), width)


def bit_and(a: Value, b: Value) -> Value:
    width = a.width
    if width == 1 and b.width == 1:
        if (a.val | a.xz) == 0 or (b.val | b.xz) == 0:
            return _B0                   # a known-0 operand dominates x
        if a.xz or b.xz:
            return _BX
        return _B1 if a.val & b.val else _B0
    if width != b.width:
        width = width if width >= b.width else b.width
        a, b = a.resized(width), b.resized(width)
    # x & 0 = 0 ; x & 1 = x ; x & x = x
    known_zero = (~a.val & ~a.xz) | (~b.val & ~b.xz)
    xz = (a.xz | b.xz) & ~known_zero
    return Value(width=width, val=a.val & b.val, xz=xz)


def bit_or(a: Value, b: Value) -> Value:
    width = a.width
    if width == 1 and b.width == 1:
        if a.val or b.val:               # a known-1 operand dominates x
            return _B1
        if a.xz or b.xz:
            return _BX
        return _B0
    if width != b.width:
        width = width if width >= b.width else b.width
        a, b = a.resized(width), b.resized(width)
    known_one = a.val | b.val
    xz = (a.xz | b.xz) & ~known_one
    return Value(width=width, val=known_one & ~xz, xz=xz)


def bit_xor(a: Value, b: Value) -> Value:
    width = a.width
    if width == 1 and b.width == 1:
        if a.xz or b.xz:
            return _BX
        return _B1 if a.val ^ b.val else _B0
    if width != b.width:
        width = width if width >= b.width else b.width
        a, b = a.resized(width), b.resized(width)
    xz = a.xz | b.xz
    return Value(width=width, val=(a.val ^ b.val) & ~xz, xz=xz)


def bit_xnor(a: Value, b: Value) -> Value:
    return bit_not(bit_xor(a, b))


def bit_not(a: Value) -> Value:
    if a.width == 1:
        if a.xz:
            return _BX
        return _B0 if a.val else _B1
    return Value(width=a.width, val=~a.val & _mask(a.width) & ~a.xz,
                 xz=a.xz)


def logic_not(a: Value) -> Value:
    if a.val != 0:
        return _B0
    if a.xz:
        return _BX
    return _B1


def logic_and(a: Value, b: Value) -> Value:
    if a.val != 0 and b.val != 0:
        return _B1
    a_false = a.val == 0 and not a.xz
    b_false = b.val == 0 and not b.xz
    if a_false or b_false:
        return _B0
    return _BX


def logic_or(a: Value, b: Value) -> Value:
    if a.val != 0 or b.val != 0:
        return _B1
    if a.xz or b.xz:
        return _BX
    return _B0


def _bool_value(result: bool) -> Value:
    return _B1 if result else _B0


def compare(op: str, a: Value, b: Value, signed: bool = False) -> Value:
    """Relational / equality comparison; returns a 1-bit value."""
    if op in ("===", "!=="):
        width = _arith_width(a, b)
        ar, br = a.resized(width), b.resized(width)
        same = ar.val == br.val and ar.xz == br.xz
        return _bool_value(same if op == "===" else not same)
    if a.xz or b.xz:
        return _BX
    width = _arith_width(a, b)
    lhs = a.resized(width, signed).to_int(signed)
    rhs = b.resized(width, signed).to_int(signed)
    if op == "==":
        return _B1 if lhs == rhs else _B0
    if op == "!=":
        return _B1 if lhs != rhs else _B0
    if op == "<":
        return _B1 if lhs < rhs else _B0
    if op == "<=":
        return _B1 if lhs <= rhs else _B0
    if op == ">":
        return _B1 if lhs > rhs else _B0
    if op == ">=":
        return _B1 if lhs >= rhs else _B0
    raise KeyError(op)


def shift_left(a: Value, amount: Value) -> Value:
    if amount.xz:
        return Value.unknown(a.width)
    sh = amount.val
    return Value(width=a.width, val=(a.val << sh) & _mask(a.width),
                 xz=(a.xz << sh) & _mask(a.width))


def shift_right(a: Value, amount: Value, arithmetic: bool = False,
                signed: bool = False) -> Value:
    if amount.xz:
        return Value.unknown(a.width)
    sh = amount.val
    if sh >= a.width:
        if arithmetic and signed:
            top = a.bit(a.width - 1)
            if top == "x":
                return Value.unknown(a.width)
            return Value.of(-1 if top == "1" else 0, a.width)
        return Value.of(0, a.width)
    val = a.val >> sh
    xz = a.xz >> sh
    if arithmetic and signed:
        top = a.bit(a.width - 1)
        fill = _mask(a.width) ^ _mask(a.width - sh)
        if top == "1":
            val |= fill
        elif top == "x":
            xz |= fill
    return Value(width=a.width, val=val, xz=xz)


def reduce_op(op: str, a: Value) -> Value:
    """Reduction operators: & ~& | ~| ^ ~^."""
    if op in ("&", "~&"):
        zero_known = (a.val | a.xz) != _mask(a.width)
        if zero_known:
            result: Value = Value.of(0, 1)
        elif a.has_unknown:
            result = Value.unknown(1)
        else:
            result = Value.of(1, 1)
    elif op in ("|", "~|"):
        if a.val != 0:
            result = Value.of(1, 1)
        elif a.has_unknown:
            result = Value.unknown(1)
        else:
            result = Value.of(0, 1)
    else:  # ^ ~^ ^~
        if a.has_unknown:
            result = Value.unknown(1)
        else:
            result = Value.of(bin(a.val).count("1") & 1, 1)
    if op in ("~&", "~|", "~^", "^~"):
        result = bit_not(result)
    return result


def concat(parts: list[Value]) -> Value:
    """Concatenate MSB-first (Verilog ``{a, b}`` order)."""
    width = 0
    val = 0
    xz = 0
    for part in parts:
        pw = part.width
        width += pw
        val = (val << pw) | part.val
        xz = (xz << pw) | part.xz
    return Value(width=width, val=val, xz=xz)


def replicate(count: int, value: Value) -> Value:
    return concat([value] * count)


def format_value(value: Value, spec: str) -> str:
    """Render for $display: spec is one of d, b, h, o (with optional 0)."""
    kind = spec[-1].lower()
    if kind == "b":
        return "".join(value.bit(i) for i in reversed(range(value.width)))
    if value.has_unknown:
        if kind == "h":
            digits = (value.width + 3) // 4
            return "".join(
                "x" if (value.xz >> (4 * i)) & 0xF else
                f"{(value.val >> (4 * i)) & 0xF:x}"
                for i in reversed(range(digits)))
        return "x"
    if kind == "h":
        return f"{value.val:x}"
    if kind == "o":
        return f"{value.val:o}"
    return str(value.val)
