"""Event-driven simulation engine (the repo's VCS stand-in).

Scheduling model (IEEE 1364 stratified event queue, simplified to the two
regions that matter for RTL):

* **active** — process resumptions and continuous-assign re-evaluations at
  the current time; executing them may trigger more active events (delta
  cycles);
* **NBA** — non-blocking assignment updates, applied only once the active
  region is empty.

Processes (``always`` / ``initial`` bodies) are Python generators that yield
``("delay", ticks)`` or ``("wait", senslist)`` requests to the scheduler, so
arbitrary mixes of delays and event controls work exactly like in a real
simulator.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field

from ..verilog import ast
from . import values as V
from .elaborate import Design, Proc, Signal
from .format import edge_fired, parse_template, render_spec, scope_name


class SimulationError(Exception):
    """Design could not be simulated (unsupported construct, bad index…)."""


class SimulationTimeout(SimulationError):
    """Delta-cycle oscillation or step budget exhausted.

    Carries the offending ``process`` label and the ``delta`` count at
    the point of failure so harnesses can report *where* a design hung,
    not just that it did.
    """

    def __init__(self, message: str, process: str | None = None,
                 delta: int | None = None):
        detail = message
        if process is not None:
            detail += f" [process: {process}]"
        if delta is not None:
            detail += f" [delta cycles: {delta}]"
        super().__init__(detail)
        self.process = process
        self.delta = delta


class _Finish(Exception):
    """Internal: raised by $finish/$stop to unwind the current process."""


@dataclass
class _Waiter:
    """A process parked on an event control."""

    state: "_ProcState"
    items: list[tuple[str | None, ast.Expr]]   # (edge, expr)
    prev: list[V.Value]
    ctx: "_Ctx"
    done: bool = False


@dataclass
class _ProcState:
    proc: Proc
    gen: object = None


@dataclass
class _Ctx:
    """Execution context: scope prefix + module (for functions) + locals."""

    prefix: str
    module: ast.Module
    locals: dict[str, V.Value] | None = None
    local_widths: dict[str, int] = field(default_factory=dict)


_MAX_FUNC_STEPS = 200_000


class Simulator:
    """Simulate an elaborated :class:`Design`."""

    def __init__(self, design: Design, max_delta: int = 50_000,
                 step_budget: int = 5_000_000):
        self.design = design
        self.time = 0
        self.finished = False
        self.display_lines: list[str] = []
        self._steps = 0
        self._step_budget = step_budget
        self._max_delta = max_delta
        self._heap: list[tuple[int, int, object]] = []
        self._seq = 0
        self._active: deque = deque()
        self._nba: list[tuple[ast.Expr, V.Value, _Ctx]] = []
        # Values are insertion-ordered index "sets" (dict keys): notify
        # order is then deterministic AND identical to the compiled
        # backend's list-based walk, which the differential harness
        # relies on.
        self._assign_deps: dict[str, dict[int, None]] = {}
        self._assign_pending: set[int] = set()
        self._current_label: str | None = None
        self._delta = 0
        self._waiters: dict[str, list[_Waiter]] = {}
        self._rand_state = 0x2545F491
        self._assign_procs: list[Proc] = []
        self.tracer = None             # set by enable_tracing()
        self._build()

    def enable_tracing(self, filename: str = "dump.vcd"):
        """Attach a VCD tracer recording every signal change."""
        from .vcd import Tracer
        if self.tracer is None:
            self.tracer = Tracer(design=self.design, filename=filename)
            self.tracer.snapshot_initial(self.time)
        else:
            self.tracer.filename = filename
        return self.tracer

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _build(self) -> None:
        for proc in self.design.procs:
            if proc.kind == "assign":
                proc.index = len(self._assign_procs)
                self._assign_procs.append(proc)
                ctx = _Ctx(proc.rhs_prefix, proc.module)
                for name in self._expr_deps(proc.rhs, ctx):
                    self._assign_deps.setdefault(name, {})[proc.index] \
                        = None
                self._assign_pending.add(proc.index)
                self._active.append(("assign", proc.index, None))
            else:
                state = _ProcState(proc)
                state.gen = self._run_proc(proc)
                self._active.append(("resume", state, None))

    # ------------------------------------------------------------------
    # Name resolution
    # ------------------------------------------------------------------

    def _resolve(self, name: str, ctx: _Ctx) -> Signal | None:
        return self.design.signals.get(ctx.prefix + name)

    def _lookup_value(self, name: str, ctx: _Ctx) -> V.Value:
        if ctx.locals is not None and name in ctx.locals:
            return ctx.locals[name]
        signal = self._resolve(name, ctx)
        if signal is not None:
            if signal.is_array:
                raise SimulationError(
                    f"memory '{name}' used without an index")
            return signal.value
        params = self.design.params.get(ctx.prefix, {})
        if name in params:
            return params[name]
        raise SimulationError(f"identifier '{name}' is not declared")

    # ------------------------------------------------------------------
    # Expression evaluation
    # ------------------------------------------------------------------

    def eval(self, expr: ast.Expr, ctx: _Ctx) -> V.Value:
        self._steps += 1
        if self._steps > self._step_budget:
            raise SimulationTimeout("simulation step budget exhausted",
                                    process=self._current_label,
                                    delta=self._delta)
        if isinstance(expr, ast.Number):
            return V.from_literal(expr.text)
        if isinstance(expr, ast.Identifier):
            return self._lookup_value(expr.name, ctx)
        if isinstance(expr, ast.HierarchicalId):
            name = ".".join(expr.parts)
            signal = self.design.signals.get(ctx.prefix + name) or \
                self.design.signals.get(name)
            if signal is None:
                raise SimulationError(f"unknown hierarchical name '{name}'")
            return signal.value
        if isinstance(expr, ast.StringLiteral):
            data = expr.value.encode()
            width = max(8 * len(data), 8)
            return V.Value.of(int.from_bytes(data, "big") if data else 0,
                              width)
        if isinstance(expr, ast.Unary):
            return self._eval_unary(expr, ctx)
        if isinstance(expr, ast.Binary):
            return self._eval_binary(expr, ctx)
        if isinstance(expr, ast.Ternary):
            cond = self.eval(expr.cond, ctx)
            if cond.is_true:
                return self.eval(expr.if_true, ctx)
            if cond.has_unknown:
                # x ? a : b — merge: bits equal in both stay, others x.
                a = self.eval(expr.if_true, ctx)
                b = self.eval(expr.if_false, ctx)
                width = max(a.width, b.width)
                a, b = a.resized(width), b.resized(width)
                same = ~(a.val ^ b.val) & ~(a.xz | b.xz)
                return V.Value(width=width, val=a.val & same,
                               xz=((1 << width) - 1) & ~same)
            return self.eval(expr.if_false, ctx)
        if isinstance(expr, ast.Concat):
            return V.concat([self.eval(p, ctx) for p in expr.parts])
        if isinstance(expr, ast.Repl):
            count = self.eval(expr.count, ctx)
            if count.has_unknown:
                raise SimulationError("replication count is x")
            return V.replicate(count.to_int(),
                               V.concat([self.eval(p, ctx)
                                         for p in expr.parts]))
        if isinstance(expr, ast.Index):
            return self._eval_index(expr, ctx)
        if isinstance(expr, ast.PartSelect):
            return self._eval_part_select(expr, ctx)
        if isinstance(expr, ast.FunctionCall):
            return self._eval_call(expr, ctx)
        raise SimulationError(
            f"cannot evaluate expression {type(expr).__name__}")

    def _eval_unary(self, expr: ast.Unary, ctx: _Ctx) -> V.Value:
        operand = self.eval(expr.operand, ctx)
        if expr.op == "+":
            return operand
        if expr.op == "-":
            return V.sub(V.Value.of(0, operand.width), operand)
        if expr.op == "~":
            return V.bit_not(operand)
        if expr.op == "!":
            return V.logic_not(operand)
        return V.reduce_op(expr.op, operand)

    _BINOPS = {
        "+": V.add, "-": V.sub, "*": V.mul, "/": V.div, "%": V.mod,
        "**": V.power,
        "&": V.bit_and, "|": V.bit_or, "^": V.bit_xor,
        "^~": V.bit_xnor, "~^": V.bit_xnor,
        "&&": V.logic_and, "||": V.logic_or,
    }

    def _eval_binary(self, expr: ast.Binary, ctx: _Ctx) -> V.Value:
        op = expr.op
        handler = self._BINOPS.get(op)
        if handler is not None:
            return handler(self.eval(expr.left, ctx),
                           self.eval(expr.right, ctx))
        left = self.eval(expr.left, ctx)
        right = self.eval(expr.right, ctx)
        if op in ("<<", "<<<"):
            return V.shift_left(left, right)
        if op == ">>":
            return V.shift_right(left, right)
        if op == ">>>":
            signed = self._is_signed(expr.left, ctx)
            return V.shift_right(left, right, arithmetic=True, signed=signed)
        if op in ("==", "!=", "===", "!==", "<", "<=", ">", ">="):
            signed = (self._is_signed(expr.left, ctx)
                      and self._is_signed(expr.right, ctx))
            return V.compare(op, left, right, signed=signed)
        raise SimulationError(f"unsupported binary operator '{op}'")

    def _is_signed(self, expr: ast.Expr, ctx: _Ctx) -> bool:
        if isinstance(expr, ast.Number):
            return "'" not in expr.text or expr.signed
        if isinstance(expr, ast.Identifier):
            signal = self._resolve(expr.name, ctx)
            if signal is not None:
                return signal.signed or signal.kind == "integer"
            return True  # parameters: treat as signed integers
        if isinstance(expr, ast.Unary) and expr.op in ("+", "-"):
            return self._is_signed(expr.operand, ctx)
        if isinstance(expr, ast.Binary) and expr.op in ("+", "-", "*", "/",
                                                        "%"):
            return (self._is_signed(expr.left, ctx)
                    and self._is_signed(expr.right, ctx))
        if isinstance(expr, ast.FunctionCall) and expr.name == "$signed":
            return True
        return False

    def _eval_index(self, expr: ast.Index, ctx: _Ctx) -> V.Value:
        if isinstance(expr.base, ast.Identifier):
            signal = self._resolve(expr.base.name, ctx)
            if signal is not None and signal.is_array:
                index = self.eval(expr.index, ctx)
                if index.has_unknown:
                    return V.Value.unknown(signal.width)
                return signal.element(index.to_int())
            if signal is not None:
                index = self.eval(expr.index, ctx)
                if index.has_unknown:
                    return V.Value.unknown(1)
                return signal.value.select_bit(
                    signal.bit_offset(index.to_int()))
        base = self.eval(expr.base, ctx)
        index = self.eval(expr.index, ctx)
        return base.select_bit(index)

    def _eval_part_select(self, expr: ast.PartSelect, ctx: _Ctx) -> V.Value:
        base_signal = None
        if isinstance(expr.base, ast.Identifier):
            base_signal = self._resolve(expr.base.name, ctx)
        if expr.mode == ":":
            msb = self.eval(expr.msb, ctx).to_int()
            lsb = self.eval(expr.lsb, ctx).to_int()
            if base_signal is not None and not base_signal.is_array:
                return base_signal.value.select_range(
                    base_signal.bit_offset(msb), base_signal.bit_offset(lsb))
            base = self.eval(expr.base, ctx)
            return base.select_range(msb, lsb)
        # Indexed part select: base[i +: w] / base[i -: w]
        start = self.eval(expr.msb, ctx)
        width = self.eval(expr.lsb, ctx).to_int()
        if start.has_unknown:
            return V.Value.unknown(width)
        start_idx = start.to_int()
        if expr.mode == "+:":
            lo, hi = start_idx, start_idx + width - 1
        else:
            lo, hi = start_idx - width + 1, start_idx
        if base_signal is not None and not base_signal.is_array:
            return base_signal.value.select_range(base_signal.bit_offset(hi),
                                                  base_signal.bit_offset(lo))
        base = self.eval(expr.base, ctx)
        return base.select_range(hi, lo)

    # -- function calls ----------------------------------------------------

    def _eval_call(self, expr: ast.FunctionCall, ctx: _Ctx) -> V.Value:
        if expr.is_system:
            return self._eval_system_call(expr, ctx)
        functions = self.design.functions.get(ctx.prefix, {})
        fn = functions.get(expr.name)
        if fn is None:
            raise SimulationError(f"unknown function '{expr.name}'")
        return self._call_function(fn, expr.args, ctx)

    def _eval_system_call(self, expr: ast.FunctionCall,
                          ctx: _Ctx) -> V.Value:
        name = expr.name
        if name == "$time":
            return V.Value.of(self.time, 64)
        if name == "$random":
            self._rand_state = (self._rand_state * 1103515245 + 12345) \
                & 0xFFFFFFFF
            return V.Value.of(self._rand_state, 32)
        if name in ("$signed", "$unsigned"):
            return self.eval(expr.args[0], ctx)
        if name == "$clog2":
            arg = self.eval(expr.args[0], ctx)
            if arg.has_unknown:
                return V.Value.unknown(32)
            return V.Value.of(max(arg.to_int() - 1, 0).bit_length(), 32)
        raise SimulationError(f"unsupported system function '{name}'")

    def _call_function(self, fn: ast.FunctionDecl, args: list[ast.Expr],
                       ctx: _Ctx) -> V.Value:
        locals_: dict[str, V.Value] = {}
        widths: dict[str, int] = {}
        ret_width = 1
        if fn.range is not None:
            params = self.design.params.get(ctx.prefix, {})
            from .elaborate import const_eval
            msb = const_eval(fn.range.msb, params).to_int()
            lsb = const_eval(fn.range.lsb, params).to_int()
            ret_width = abs(msb - lsb) + 1
        locals_[fn.name] = V.Value.unknown(ret_width)
        widths[fn.name] = ret_width
        arg_pos = 0
        for item in fn.items:
            if isinstance(item, ast.PortDecl) and item.direction == "input":
                for name in item.names:
                    width = 1
                    if item.range is not None:
                        params = self.design.params.get(ctx.prefix, {})
                        from .elaborate import const_eval
                        msb = const_eval(item.range.msb, params).to_int()
                        lsb = const_eval(item.range.lsb, params).to_int()
                        width = abs(msb - lsb) + 1
                    if arg_pos < len(args):
                        value = self.eval(args[arg_pos], ctx).resized(width)
                    else:
                        value = V.Value.unknown(width)
                    locals_[name] = value
                    widths[name] = width
                    arg_pos += 1
            elif isinstance(item, ast.Decl):
                for decl in item.declarators:
                    width = 32 if item.kind == "integer" else 1
                    if item.range is not None:
                        params = self.design.params.get(ctx.prefix, {})
                        from .elaborate import const_eval
                        msb = const_eval(item.range.msb, params).to_int()
                        lsb = const_eval(item.range.lsb, params).to_int()
                        width = abs(msb - lsb) + 1
                    locals_[decl.name] = V.Value.unknown(width)
                    widths[decl.name] = width
        fn_ctx = _Ctx(ctx.prefix, ctx.module, locals=locals_,
                      local_widths=widths)
        self._exec_sync(fn.body, fn_ctx)
        return locals_[fn.name]

    def _exec_sync(self, stmt: ast.Stmt, ctx: _Ctx) -> None:
        """Execute delay-free statements (function bodies) synchronously."""
        for request in self._exec(stmt, ctx):
            raise SimulationError(
                "delay or event control inside a function")

    # ------------------------------------------------------------------
    # Lvalue writing
    # ------------------------------------------------------------------

    def _lvalue_width(self, expr: ast.Expr, ctx: _Ctx) -> int:
        if isinstance(expr, ast.Identifier):
            if ctx.locals is not None and expr.name in ctx.locals:
                return ctx.local_widths.get(expr.name,
                                            ctx.locals[expr.name].width)
            signal = self._resolve(expr.name, ctx)
            if signal is None:
                raise SimulationError(
                    f"identifier '{expr.name}' is not declared")
            return signal.width
        if isinstance(expr, ast.Index):
            if isinstance(expr.base, ast.Identifier):
                signal = self._resolve(expr.base.name, ctx)
                if signal is not None and signal.is_array:
                    return signal.width
            return 1
        if isinstance(expr, ast.PartSelect):
            if expr.mode == ":":
                msb = self.eval(expr.msb, ctx).to_int()
                lsb = self.eval(expr.lsb, ctx).to_int()
                return abs(msb - lsb) + 1
            return self.eval(expr.lsb, ctx).to_int()
        if isinstance(expr, ast.Concat):
            return sum(self._lvalue_width(p, ctx) for p in expr.parts)
        raise SimulationError(
            f"invalid assignment target {type(expr).__name__}")

    def write_lvalue(self, lhs: ast.Expr, value: V.Value, ctx: _Ctx) -> None:
        if isinstance(lhs, ast.Concat):
            total = self._lvalue_width(lhs, ctx)
            value = value.resized(total)
            offset = total
            for part in lhs.parts:
                part_width = self._lvalue_width(part, ctx)
                offset -= part_width
                self.write_lvalue(
                    part, value.select_range(offset + part_width - 1, offset),
                    ctx)
            return
        if isinstance(lhs, ast.Identifier):
            if ctx.locals is not None and lhs.name in ctx.locals:
                width = ctx.local_widths.get(lhs.name,
                                             ctx.locals[lhs.name].width)
                ctx.locals[lhs.name] = value.resized(width)
                return
            signal = self._resolve(lhs.name, ctx)
            if signal is None:
                raise SimulationError(
                    f"identifier '{lhs.name}' is not declared")
            self._set_signal(signal, value.resized(signal.width))
            return
        if isinstance(lhs, ast.HierarchicalId):
            name = ".".join(lhs.parts)
            signal = self.design.signals.get(ctx.prefix + name) or \
                self.design.signals.get(name)
            if signal is None:
                raise SimulationError(
                    f"unknown hierarchical name '{name}'")
            self._set_signal(signal, value.resized(signal.width))
            return
        if isinstance(lhs, ast.Index):
            if not isinstance(lhs.base, ast.Identifier):
                raise SimulationError("unsupported nested lvalue index")
            signal = self._resolve(lhs.base.name, ctx)
            if signal is None:
                raise SimulationError(
                    f"identifier '{lhs.base.name}' is not declared")
            index = self.eval(lhs.index, ctx)
            if index.has_unknown:
                return  # write to x index is lost
            if signal.is_array:
                self._set_element(signal, index.to_int(),
                                  value.resized(signal.width))
            else:
                offset = signal.bit_offset(index.to_int())
                if 0 <= offset < signal.width:
                    self._set_signal(
                        signal,
                        signal.value.with_bits(offset, offset, value))
            return
        if isinstance(lhs, ast.PartSelect):
            if not isinstance(lhs.base, ast.Identifier):
                raise SimulationError("unsupported nested lvalue select")
            signal = self._resolve(lhs.base.name, ctx)
            if signal is None:
                raise SimulationError(
                    f"identifier '{lhs.base.name}' is not declared")
            if lhs.mode == ":":
                msb = self.eval(lhs.msb, ctx).to_int()
                lsb = self.eval(lhs.lsb, ctx).to_int()
            else:
                start = self.eval(lhs.msb, ctx).to_int()
                width = self.eval(lhs.lsb, ctx).to_int()
                if lhs.mode == "+:":
                    lsb, msb = start, start + width - 1
                else:
                    msb, lsb = start, start - width + 1
            off_hi = signal.bit_offset(msb)
            off_lo = signal.bit_offset(lsb)
            self._set_signal(signal, signal.value.with_bits(
                max(off_hi, off_lo), min(off_hi, off_lo), value))
            return
        raise SimulationError(
            f"invalid assignment target {type(lhs).__name__}")

    # ------------------------------------------------------------------
    # Signal updates & notification
    # ------------------------------------------------------------------

    def _set_signal(self, signal: Signal, value: V.Value) -> None:
        if signal.value == value:
            return
        signal.value = value
        if self.tracer is not None:
            self.tracer.record(signal.name, self.time, value)
        self._notify(signal.name)

    def _set_element(self, signal: Signal, index: int,
                     value: V.Value) -> None:
        if signal.element(index) == value:
            return
        signal.array[index] = value
        self._notify(signal.name)

    def _notify(self, name: str) -> None:
        for proc_index in self._assign_deps.get(name, ()):
            if proc_index not in self._assign_pending:
                self._assign_pending.add(proc_index)
                self._active.append(("assign", proc_index, None))
        waiters = self._waiters.get(name)
        if not waiters:
            return
        still: list[_Waiter] = []
        for waiter in waiters:
            if waiter.done:
                continue
            if self._check_trigger(waiter):
                waiter.done = True
                self._active.append(("resume", waiter.state, None))
            else:
                still.append(waiter)
        self._waiters[name] = still

    #: Edge semantics shared with the compiled backend (sim.format).
    _edge_fired = staticmethod(edge_fired)

    def _check_trigger(self, waiter: _Waiter) -> bool:
        fired = False
        for pos, (edge, expr) in enumerate(waiter.items):
            new = self.eval(expr, waiter.ctx)
            if self._edge_fired(edge, waiter.prev[pos], new):
                fired = True
            waiter.prev[pos] = new
        return fired

    # ------------------------------------------------------------------
    # Dependency analysis
    # ------------------------------------------------------------------

    def _expr_deps(self, expr: ast.Expr, ctx: _Ctx,
                   acc: set[str] | None = None) -> set[str]:
        if acc is None:
            acc = set()
        if isinstance(expr, ast.Identifier):
            if self._resolve(expr.name, ctx) is not None:
                acc.add(ctx.prefix + expr.name)
        elif isinstance(expr, ast.HierarchicalId):
            name = ".".join(expr.parts)
            if ctx.prefix + name in self.design.signals:
                acc.add(ctx.prefix + name)
            elif name in self.design.signals:
                acc.add(name)
        elif isinstance(expr, ast.Unary):
            self._expr_deps(expr.operand, ctx, acc)
        elif isinstance(expr, ast.Binary):
            self._expr_deps(expr.left, ctx, acc)
            self._expr_deps(expr.right, ctx, acc)
        elif isinstance(expr, ast.Ternary):
            self._expr_deps(expr.cond, ctx, acc)
            self._expr_deps(expr.if_true, ctx, acc)
            self._expr_deps(expr.if_false, ctx, acc)
        elif isinstance(expr, (ast.Concat,)):
            for part in expr.parts:
                self._expr_deps(part, ctx, acc)
        elif isinstance(expr, ast.Repl):
            self._expr_deps(expr.count, ctx, acc)
            for part in expr.parts:
                self._expr_deps(part, ctx, acc)
        elif isinstance(expr, ast.Index):
            self._expr_deps(expr.base, ctx, acc)
            self._expr_deps(expr.index, ctx, acc)
        elif isinstance(expr, ast.PartSelect):
            self._expr_deps(expr.base, ctx, acc)
            self._expr_deps(expr.msb, ctx, acc)
            self._expr_deps(expr.lsb, ctx, acc)
        elif isinstance(expr, ast.FunctionCall):
            for arg in expr.args:
                self._expr_deps(arg, ctx, acc)
            if not expr.is_system:
                fn = self.design.functions.get(ctx.prefix, {}) \
                    .get(expr.name)
                if fn is not None and fn.body is not None:
                    self._stmt_reads(fn.body, ctx, acc)
        return acc

    def _stmt_reads(self, stmt: ast.Stmt, ctx: _Ctx,
                    acc: set[str]) -> None:
        """All signals read anywhere in ``stmt`` (for @(*) sensitivity)."""
        if isinstance(stmt, ast.Block):
            for child in stmt.stmts:
                if isinstance(child, ast.Stmt):
                    self._stmt_reads(child, ctx, acc)
        elif isinstance(stmt, (ast.BlockingAssign, ast.NonBlockingAssign)):
            self._expr_deps(stmt.rhs, ctx, acc)
            # index expressions on the LHS are reads too
            lhs = stmt.lhs
            if isinstance(lhs, ast.Index):
                self._expr_deps(lhs.index, ctx, acc)
            elif isinstance(lhs, ast.PartSelect):
                self._expr_deps(lhs.msb, ctx, acc)
                self._expr_deps(lhs.lsb, ctx, acc)
        elif isinstance(stmt, ast.IfStmt):
            self._expr_deps(stmt.cond, ctx, acc)
            if stmt.then_stmt:
                self._stmt_reads(stmt.then_stmt, ctx, acc)
            if stmt.else_stmt:
                self._stmt_reads(stmt.else_stmt, ctx, acc)
        elif isinstance(stmt, ast.CaseStmt):
            self._expr_deps(stmt.expr, ctx, acc)
            for item in stmt.items:
                for expr in item.exprs:
                    self._expr_deps(expr, ctx, acc)
                if item.stmt:
                    self._stmt_reads(item.stmt, ctx, acc)
        elif isinstance(stmt, ast.ForStmt):
            self._expr_deps(stmt.cond, ctx, acc)
            self._stmt_reads(stmt.init, ctx, acc)
            self._stmt_reads(stmt.step, ctx, acc)
            self._stmt_reads(stmt.body, ctx, acc)
        elif isinstance(stmt, (ast.WhileStmt,)):
            self._expr_deps(stmt.cond, ctx, acc)
            self._stmt_reads(stmt.body, ctx, acc)
        elif isinstance(stmt, (ast.RepeatStmt,)):
            self._expr_deps(stmt.count, ctx, acc)
            self._stmt_reads(stmt.body, ctx, acc)
        elif isinstance(stmt, ast.ForeverStmt):
            self._stmt_reads(stmt.body, ctx, acc)
        elif isinstance(stmt, (ast.DelayStmt, ast.EventControlStmt,
                               ast.WaitStmt)):
            if stmt.stmt:
                self._stmt_reads(stmt.stmt, ctx, acc)
        elif isinstance(stmt, ast.SysTaskCall):
            for arg in stmt.args:
                if not isinstance(arg, ast.StringLiteral):
                    self._expr_deps(arg, ctx, acc)

    # ------------------------------------------------------------------
    # Statement execution (generator)
    # ------------------------------------------------------------------

    def _run_proc(self, proc: Proc):
        ctx = _Ctx(proc.prefix, proc.module)
        try:
            if proc.kind == "initial":
                yield from self._exec(proc.body, ctx)
            else:
                while True:
                    yield from self._exec(proc.body, ctx)
                    self._steps += 50  # charge loop overhead
                    if self._steps > self._step_budget:
                        raise SimulationTimeout(
                            "always block without delay or event control",
                            process=proc.label, delta=self._delta)
        except _Finish:
            pass

    def _exec(self, stmt: ast.Stmt | None, ctx: _Ctx):
        self._steps += 1
        if self._steps > self._step_budget:
            raise SimulationTimeout("simulation step budget exhausted",
                                    process=self._current_label,
                                    delta=self._delta)
        if stmt is None or isinstance(stmt, ast.NullStmt):
            return
        if isinstance(stmt, ast.Block):
            for child in stmt.stmts:
                if isinstance(child, ast.Decl):
                    continue  # hoisted at elaboration
                yield from self._exec(child, ctx)
            return
        if isinstance(stmt, ast.BlockingAssign):
            value = self.eval(stmt.rhs, ctx)
            if stmt.delay is not None:
                ticks = self.eval(stmt.delay, ctx).to_int()
                if ticks:
                    yield ("delay", ticks)
            self.write_lvalue(stmt.lhs, value, ctx)
            return
        if isinstance(stmt, ast.NonBlockingAssign):
            value = self.eval(stmt.rhs, ctx)
            if stmt.delay is not None:
                ticks = self.eval(stmt.delay, ctx).to_int()
                self._schedule(ticks, ("nba_future", (stmt.lhs, value, ctx)))
            else:
                self._nba.append((stmt.lhs, value, ctx))
            return
        if isinstance(stmt, ast.IfStmt):
            cond = self.eval(stmt.cond, ctx)
            if cond.is_true:
                yield from self._exec(stmt.then_stmt, ctx)
            elif stmt.else_stmt is not None:
                yield from self._exec(stmt.else_stmt, ctx)
            return
        if isinstance(stmt, ast.CaseStmt):
            yield from self._exec_case(stmt, ctx)
            return
        if isinstance(stmt, ast.ForStmt):
            yield from self._exec(stmt.init, ctx)
            while self.eval(stmt.cond, ctx).is_true:
                yield from self._exec(stmt.body, ctx)
                yield from self._exec(stmt.step, ctx)
            return
        if isinstance(stmt, ast.WhileStmt):
            while self.eval(stmt.cond, ctx).is_true:
                yield from self._exec(stmt.body, ctx)
            return
        if isinstance(stmt, ast.RepeatStmt):
            count = self.eval(stmt.count, ctx)
            for _ in range(max(count.to_int(), 0)):
                yield from self._exec(stmt.body, ctx)
            return
        if isinstance(stmt, ast.ForeverStmt):
            while True:
                yield from self._exec(stmt.body, ctx)
                self._steps += 50
                if self._steps > self._step_budget:
                    raise SimulationTimeout("forever loop without delay",
                                            process=self._current_label,
                                            delta=self._delta)
            return
        if isinstance(stmt, ast.DelayStmt):
            ticks = self.eval(stmt.delay, ctx).to_int()
            yield ("delay", ticks)
            yield from self._exec(stmt.stmt, ctx)
            return
        if isinstance(stmt, ast.EventControlStmt):
            yield ("wait", self._sens_items(stmt.senslist, ctx), ctx)
            yield from self._exec(stmt.stmt, ctx)
            return
        if isinstance(stmt, ast.WaitStmt):
            while not self.eval(stmt.cond, ctx).is_true:
                items = [(None, dep_expr) for dep_expr in
                         self._dep_exprs(stmt.cond, ctx)]
                if not items:
                    raise SimulationError("wait() on constant expression")
                yield ("wait", items, ctx)
            yield from self._exec(stmt.stmt, ctx)
            return
        if isinstance(stmt, ast.SysTaskCall):
            self._exec_systask(stmt, ctx)
            return
        if isinstance(stmt, ast.DisableStmt):
            return  # treated as a no-op fence
        if isinstance(stmt, ast.TaskCall):
            raise SimulationError(
                f"user task '{stmt.name}' is not supported")
        raise SimulationError(
            f"cannot execute statement {type(stmt).__name__}")

    def _dep_exprs(self, expr: ast.Expr, ctx: _Ctx) -> list[ast.Expr]:
        names = self._expr_deps(expr, ctx)
        out = []
        for name in names:
            local = name[len(ctx.prefix):] if name.startswith(ctx.prefix) \
                else name
            out.append(ast.Identifier(name=local))
        return out

    def _sens_items(self, senslist: ast.SensList,
                    ctx: _Ctx) -> list[tuple[str | None, ast.Expr]]:
        if senslist.is_star:
            raise SimulationError("@(*) must be expanded at process setup")
        return [(item.edge, item.signal) for item in senslist.items]

    def _exec_case(self, stmt: ast.CaseStmt, ctx: _Ctx):
        selector = self.eval(stmt.expr, ctx)
        default_item = None
        for item in stmt.items:
            if not item.exprs:
                default_item = item
                continue
            for label_expr in item.exprs:
                label = self.eval(label_expr, ctx)
                if self._case_match(stmt.kind, selector, label):
                    yield from self._exec(item.stmt, ctx)
                    return
        if default_item is not None:
            yield from self._exec(default_item.stmt, ctx)

    @staticmethod
    def _case_match(kind: str, selector: V.Value, label: V.Value) -> bool:
        width = max(selector.width, label.width)
        sel = selector.resized(width)
        lab = label.resized(width)
        if kind == "case":
            return sel.val == lab.val and sel.xz == lab.xz
        if kind == "casez":
            care = ~lab.xz            # label x/z/? bits are don't-care
        else:  # casex
            care = ~(lab.xz | sel.xz)
        mask = (1 << width) - 1
        care &= mask
        if kind == "casez" and (sel.xz & care):
            return False              # selector x on a cared-for bit
        return (sel.val & care) == (lab.val & care)

    # -- system tasks --------------------------------------------------------

    def _exec_systask(self, stmt: ast.SysTaskCall, ctx: _Ctx) -> None:
        name = stmt.name
        if name in ("$display", "$write", "$strobe", "$monitor", "$error",
                    "$warning", "$info"):
            text = self._format_args(stmt.args, ctx)
            if name == "$error":
                text = "ERROR: " + text
            self.display_lines.append(text)
            return
        if name in ("$finish", "$stop", "$fatal"):
            self.finished = True
            raise _Finish()
        if name == "$dumpfile":
            filename = "dump.vcd"
            if stmt.args and isinstance(stmt.args[0], ast.StringLiteral):
                filename = stmt.args[0].value
            self.enable_tracing(filename)
            self.tracer.enabled = False   # armed by $dumpvars
            return
        if name == "$dumpvars":
            tracer = self.enable_tracing(
                self.tracer.filename if self.tracer else "dump.vcd")
            tracer.enabled = True
            tracer.snapshot_initial(self.time)
            return
        if name == "$dumpon":
            if self.tracer is not None:
                self.tracer.enabled = True
            return
        if name == "$dumpoff":
            if self.tracer is not None:
                self.tracer.enabled = False
            return
        if name in ("$timeformat", "$readmemh", "$readmemb"):
            return  # accepted and ignored
        raise SimulationError(f"unsupported system task '{name}'")

    def _format_args(self, args: list[ast.Expr], ctx: _Ctx) -> str:
        if not args:
            return ""
        first = args[0]
        if isinstance(first, ast.StringLiteral):
            return self._format_string(first.value, args[1:], ctx)
        rendered = []
        for arg in args:
            if isinstance(arg, ast.StringLiteral):
                rendered.append(arg.value)
            else:
                rendered.append(V.format_value(self.eval(arg, ctx), "d"))
        return " ".join(rendered)

    def _format_string(self, template: str, args: list[ast.Expr],
                       ctx: _Ctx) -> str:
        out: list[str] = []
        arg_iter = iter(args)
        for segment in parse_template(template):
            kind = segment[0]
            if kind == "lit":
                out.append(segment[1])
            elif kind == "pct":
                out.append("%")
            elif kind == "mod":
                out.append(scope_name(ctx.prefix, self.design.top))
            else:
                spec = segment[1]
                try:
                    arg = next(arg_iter)
                except StopIteration:
                    out.append("%" + spec)
                    continue
                if spec == "s" and isinstance(arg, ast.StringLiteral):
                    out.append(arg.value)
                    continue
                out.append(render_spec(spec, self.eval(arg, ctx)))
        return "".join(out)

    # ------------------------------------------------------------------
    # Scheduler
    # ------------------------------------------------------------------

    def _schedule(self, delay: int, action) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (self.time + max(delay, 0), self._seq,
                                    action))

    def _resume(self, state: _ProcState, ctx_hint) -> None:
        try:
            request = next(state.gen)
        except StopIteration:
            return
        except _Finish:
            return
        self._handle_request(state, request)

    def _handle_request(self, state: _ProcState, request) -> None:
        kind = request[0]
        if kind == "delay":
            self._schedule(request[1], ("resume", state, None))
            return
        if kind == "wait":
            items, ctx = request[1], request[2]
            expanded = self._expand_star(items, state, ctx)
            waiter = _Waiter(
                state=state,
                items=expanded,
                prev=[self.eval(expr, ctx) for _, expr in expanded],
                ctx=ctx)
            deps: set[str] = set()
            for _, expr in expanded:
                self._expr_deps(expr, ctx, deps)
            if not deps:
                raise SimulationError("event control with no signals")
            for name in deps:
                self._waiters.setdefault(name, []).append(waiter)
            return
        raise SimulationError(f"unknown scheduler request {kind!r}")

    def _expand_star(self, items, state: _ProcState, ctx: _Ctx):
        # items comes from _sens_items which rejects stars; stars are
        # expanded here from the process body instead.
        return items

    def _run_assign(self, index: int) -> None:
        proc = self._assign_procs[index]
        rhs_ctx = _Ctx(proc.rhs_prefix, proc.module)
        lhs_ctx = _Ctx(proc.lhs_prefix, proc.module)
        value = self.eval(proc.rhs, rhs_ctx)
        self.write_lvalue(proc.lhs, value, lhs_ctx)

    def run(self, max_time: int = 1_000_000) -> None:
        """Run until $finish, event exhaustion, or ``max_time``."""
        self._prepare_star_processes()
        while True:
            delta = 0
            while self._active or self._nba:
                while self._active:
                    delta += 1
                    self._delta = delta
                    if delta > self._max_delta:
                        raise SimulationTimeout(
                            f"delta overflow at time {self.time}",
                            process=self._current_label, delta=delta)
                    kind, payload, extra = self._active.popleft()
                    if self.finished:
                        return
                    if kind == "resume":
                        self._current_label = payload.proc.label
                        self._resume(payload, extra)
                    elif kind == "assign":
                        self._current_label = \
                            self._assign_procs[payload].label
                        self._assign_pending.discard(payload)
                        self._run_assign(payload)
                if self.finished:
                    return
                if self._nba:
                    updates, self._nba = self._nba, []
                    for lhs, value, ctx in updates:
                        self.write_lvalue(lhs, value, ctx)
            if self.finished or not self._heap:
                return
            next_time = self._heap[0][0]
            if next_time > max_time:
                return
            self.time = next_time
            while self._heap and self._heap[0][0] == next_time:
                _, _, action = heapq.heappop(self._heap)
                if action[0] == "nba_future":
                    self._nba.append(action[1])
                else:
                    self._active.append(action)

    def _prepare_star_processes(self) -> None:
        """Expand @(*) sensitivity into explicit signal lists up-front."""
        for proc in self.design.procs:
            if proc.kind != "always" or proc.body is None:
                continue
            body = proc.body
            if isinstance(body, ast.EventControlStmt) and \
                    body.senslist.is_star:
                ctx = _Ctx(proc.prefix, proc.module)
                reads: set[str] = set()
                if body.stmt is not None:
                    self._stmt_reads(body.stmt, ctx, reads)
                items = []
                for name in sorted(reads):
                    local = name[len(proc.prefix):] \
                        if name.startswith(proc.prefix) else name
                    items.append(ast.SensItem(
                        edge=None, signal=ast.Identifier(name=local)))
                if not items:
                    items.append(ast.SensItem(
                        edge=None, signal=ast.Identifier(name="__never__")))
                    continue
                body.senslist = ast.SensList(items=items)

    # -- introspection -----------------------------------------------------

    def value_of(self, name: str) -> V.Value:
        """Current value of a (hierarchical) signal name."""
        return self.design.signal(name).value
