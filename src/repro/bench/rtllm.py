"""RTLLM-style benchmark suite: the 29 designs of the paper's Table 3.

Each entry re-implements the named RTLLM design (Lu et al., ASP-DAC) at
equivalent complexity, with a self-checking testbench.  Table 5 evaluates
the 18-design subset the paper lists; :func:`rtllm_table5_subset` returns
it.
"""

from __future__ import annotations

from functools import lru_cache

from ..nl import describe_source
from .problems import Problem, spaced_difficulties

#: Table 5 uses this 18-design subset (paper row order).
TABLE5_NAMES = (
    "accu", "adder_8bit", "adder_16bit", "adder_32bit", "adder_64bit",
    "multi_16bit", "Johnson_Counter", "right_shifter", "mux",
    "counter_12", "signal_generator", "serial2parallel", "edge_detect",
    "width_8to16", "calendar", "RAM", "alu", "pe",
)

_RAW: list[tuple[str, str, str, str]] = []     # (name, middle, ref, tb)


def _add(name: str, middle: str, reference: str, testbench: str) -> None:
    _RAW.append((name, middle,
                 reference, f"module tb;\n{testbench}\nendmodule\n"))


_CLK = "  always #5 clk = ~clk;\n"

_add("accu",
     "Accumulate four serial 8-bit inputs; raise valid with the 10-bit "
     "sum after every fourth input.",
     """module accu (input clk, input rst_n, input [7:0] data_in,
             input valid_in, output reg valid_out,
             output reg [9:0] data_out);
  reg [9:0] sum;
  reg [1:0] cnt;
  always @(posedge clk or negedge rst_n)
    if (!rst_n) begin
      sum <= 10'd0; cnt <= 2'd0; valid_out <= 1'b0; data_out <= 10'd0;
    end else if (valid_in) begin
      if (cnt == 2'd3) begin
        data_out <= sum + data_in;
        valid_out <= 1'b1;
        sum <= 10'd0;
        cnt <= 2'd0;
      end else begin
        sum <= sum + data_in;
        cnt <= cnt + 2'd1;
        valid_out <= 1'b0;
      end
    end else
      valid_out <= 1'b0;
endmodule
""",
     """  reg clk, rst_n, valid_in; reg [7:0] data_in;
  wire valid_out; wire [9:0] data_out;
  accu dut (.clk(clk), .rst_n(rst_n), .data_in(data_in),
            .valid_in(valid_in), .valid_out(valid_out),
            .data_out(data_out));
""" + _CLK + """  initial begin
    clk = 0; rst_n = 0; valid_in = 0; data_in = 0;
    #12 rst_n = 1; valid_in = 1;
    data_in = 8'd10; #10;
    data_in = 8'd20; #10;
    data_in = 8'd30; #10;
    data_in = 8'd40; #10;
    valid_in = 0; #2;
    if (valid_out && data_out == 10'd100) $display("PASS sum");
    else $display("FAIL sum got %0d v=%b", data_out, valid_out);
    #10;
    if (!valid_out) $display("PASS onecycle");
    else $display("FAIL onecycle");
    $finish;
  end""")

_add("adder_8bit",
     "An 8-bit full adder with carry-in and carry-out.",
     """module adder_8bit (input [7:0] a, input [7:0] b, input cin,
                   output [7:0] sum, output cout);
  assign {cout, sum} = {1'b0, a} + {1'b0, b} + cin;
endmodule
""",
     """  reg [7:0] a, b; reg cin; wire [7:0] sum; wire cout;
  adder_8bit dut (.a(a), .b(b), .cin(cin), .sum(sum), .cout(cout));
  initial begin
    a = 8'd100; b = 8'd55; cin = 0; #1;
    if (sum == 8'd155 && !cout) $display("PASS nocarry");
    else $display("FAIL nocarry");
    a = 8'd200; b = 8'd100; cin = 1; #1;
    if (sum == 8'd45 && cout) $display("PASS carry");
    else $display("FAIL carry got %0d c=%b", sum, cout);
    $finish;
  end""")

_add("adder_16bit",
     "A 16-bit adder with carry-out.",
     """module adder_16bit (input [15:0] a, input [15:0] b, input cin,
                    output [15:0] sum, output cout);
  assign {cout, sum} = {1'b0, a} + {1'b0, b} + cin;
endmodule
""",
     """  reg [15:0] a, b; reg cin; wire [15:0] sum; wire cout;
  adder_16bit dut (.a(a), .b(b), .cin(cin), .sum(sum), .cout(cout));
  initial begin
    a = 16'd40000; b = 16'd30000; cin = 0; #1;
    if (sum == 16'd4464 && cout) $display("PASS wrap");
    else $display("FAIL wrap");
    a = 16'd5; b = 16'd6; cin = 1; #1;
    if (sum == 16'd12 && !cout) $display("PASS small");
    else $display("FAIL small");
    $finish;
  end""")

_add("adder_32bit",
     "A 32-bit carry-lookahead style adder.",
     """module adder_32bit (input [31:0] a, input [31:0] b,
                    output [31:0] sum, output cout);
  assign {cout, sum} = {1'b0, a} + {1'b0, b};
endmodule
""",
     """  reg [31:0] a, b; wire [31:0] sum; wire cout;
  adder_32bit dut (.a(a), .b(b), .sum(sum), .cout(cout));
  initial begin
    a = 32'hFFFF_FFFF; b = 32'd1; #1;
    if (sum == 32'd0 && cout) $display("PASS carry");
    else $display("FAIL carry");
    a = 32'd123456; b = 32'd654321; #1;
    if (sum == 32'd777777) $display("PASS add");
    else $display("FAIL add");
    $finish;
  end""")

_add("adder_64bit",
     "A 64-bit ripple adder.",
     """module adder_64bit (input [63:0] a, input [63:0] b,
                    output [63:0] sum, output cout);
  assign {cout, sum} = {1'b0, a} + {1'b0, b};
endmodule
""",
     """  reg [63:0] a, b; wire [63:0] sum; wire cout;
  adder_64bit dut (.a(a), .b(b), .sum(sum), .cout(cout));
  initial begin
    a = 64'hFFFF_FFFF_FFFF_FFFF; b = 64'd2; #1;
    if (sum == 64'd1 && cout) $display("PASS carry");
    else $display("FAIL carry");
    $finish;
  end""")

_add("multi_16bit",
     "A 16-bit multiplier producing a 32-bit product.",
     """module multi_16bit (input [15:0] a, input [15:0] b,
                    output [31:0] p);
  assign p = {16'd0, a} * {16'd0, b};
endmodule
""",
     """  reg [15:0] a, b; wire [31:0] p;
  multi_16bit dut (.a(a), .b(b), .p(p));
  initial begin
    a = 16'd300; b = 16'd200; #1;
    if (p == 32'd60000) $display("PASS small");
    else $display("FAIL small");
    a = 16'hFFFF; b = 16'hFFFF; #1;
    if (p == 32'hFFFE0001) $display("PASS max");
    else $display("FAIL max");
    $finish;
  end""")

_add("multi_pipe_4bit",
     "A two-stage pipelined 4-bit multiplier.",
     """module multi_pipe_4bit (input clk, input rst_n, input [3:0] a,
                        input [3:0] b, output reg [7:0] p);
  reg [7:0] stage;
  always @(posedge clk or negedge rst_n)
    if (!rst_n) begin
      stage <= 8'd0; p <= 8'd0;
    end else begin
      stage <= {4'd0, a} * {4'd0, b};
      p <= stage;
    end
endmodule
""",
     """  reg clk, rst_n; reg [3:0] a, b; wire [7:0] p;
  multi_pipe_4bit dut (.clk(clk), .rst_n(rst_n), .a(a), .b(b), .p(p));
""" + _CLK + """  initial begin
    clk = 0; rst_n = 0; a = 4'd5; b = 4'd7;
    #12 rst_n = 1;
    #4;
    if (p == 8'd0) $display("PASS latency");
    else $display("FAIL latency got %0d", p);
    #16;
    if (p == 8'd35) $display("PASS mul");
    else $display("FAIL mul got %0d", p);
    a = 4'd15; b = 4'd15;
    #20;
    if (p == 8'd225) $display("PASS max");
    else $display("FAIL max got %0d", p);
    $finish;
  end""")

_add("multi_pipe_8bit",
     "A two-stage pipelined 8-bit multiplier.",
     """module multi_pipe_8bit (input clk, input rst_n, input [7:0] a,
                        input [7:0] b, output reg [15:0] p);
  reg [15:0] stage;
  always @(posedge clk or negedge rst_n)
    if (!rst_n) begin
      stage <= 16'd0; p <= 16'd0;
    end else begin
      stage <= {8'd0, a} * {8'd0, b};
      p <= stage;
    end
endmodule
""",
     """  reg clk, rst_n; reg [7:0] a, b; wire [15:0] p;
  multi_pipe_8bit dut (.clk(clk), .rst_n(rst_n), .a(a), .b(b), .p(p));
""" + _CLK + """  initial begin
    clk = 0; rst_n = 0; a = 8'd100; b = 8'd200;
    #12 rst_n = 1;
    #4;
    if (p == 16'd0) $display("PASS latency");
    else $display("FAIL latency got %0d", p);
    #16;
    if (p == 16'd20000) $display("PASS mul");
    else $display("FAIL mul got %0d", p);
    a = 8'd255; b = 8'd255;
    #20;
    if (p == 16'd65025) $display("PASS max");
    else $display("FAIL max got %0d", p);
    $finish;
  end""")

_add("multi_booth",
     "An iterative 8-bit Booth-style multiplier with start and done.",
     """module multi_booth (input clk, input rst_n, input start,
                    input [7:0] a, input [7:0] b,
                    output reg [15:0] p, output reg done);
  reg [15:0] acc;
  reg [15:0] mcand;
  reg [7:0] mplier;
  reg [3:0] cnt;
  reg busy;
  always @(posedge clk or negedge rst_n)
    if (!rst_n) begin
      acc <= 16'd0; mcand <= 16'd0; mplier <= 8'd0;
      cnt <= 4'd0; busy <= 1'b0; done <= 1'b0; p <= 16'd0;
    end else if (start && !busy) begin
      acc <= 16'd0;
      mcand <= {8'd0, a};
      mplier <= b;
      cnt <= 4'd0;
      busy <= 1'b1;
      done <= 1'b0;
    end else if (busy) begin
      if (mplier[0])
        acc <= acc + mcand;
      mcand <= mcand << 1;
      mplier <= mplier >> 1;
      if (cnt == 4'd7) begin
        busy <= 1'b0;
        done <= 1'b1;
        p <= mplier[0] ? (acc + mcand) : acc;
      end else
        cnt <= cnt + 4'd1;
    end else
      done <= 1'b0;
endmodule
""",
     """  reg clk, rst_n, start; reg [7:0] a, b;
  wire [15:0] p; wire done;
  multi_booth dut (.clk(clk), .rst_n(rst_n), .start(start), .a(a),
                   .b(b), .p(p), .done(done));
""" + _CLK + """  initial begin
    clk = 0; rst_n = 0; start = 0; a = 8'd12; b = 8'd11;
    #12 rst_n = 1; start = 1;
    #10 start = 0;
    #120;
    if (p == 16'd132) $display("PASS booth");
    else $display("FAIL booth got %0d", p);
    a = 8'd250; b = 8'd3; start = 1;
    #10 start = 0;
    #120;
    if (p == 16'd750) $display("PASS booth2");
    else $display("FAIL booth2 got %0d", p);
    $finish;
  end""")

_add("div_16bit",
     "A combinational 16-by-8 divider with quotient and remainder.",
     """module div_16bit (input [15:0] a, input [7:0] b,
                  output [15:0] q, output [7:0] r);
  assign q = (b == 8'd0) ? 16'hFFFF : a / b;
  assign r = (b == 8'd0) ? 8'hFF : a % b;
endmodule
""",
     """  reg [15:0] a; reg [7:0] b; wire [15:0] q; wire [7:0] r;
  div_16bit dut (.a(a), .b(b), .q(q), .r(r));
  initial begin
    a = 16'd1000; b = 8'd7; #1;
    if (q == 16'd142 && r == 8'd6) $display("PASS div");
    else $display("FAIL div q=%0d r=%0d", q, r);
    a = 16'd64; b = 8'd8; #1;
    if (q == 16'd8 && r == 8'd0) $display("PASS exact");
    else $display("FAIL exact");
    a = 16'd9; b = 8'd0; #1;
    if (q == 16'hFFFF && r == 8'hFF) $display("PASS divzero");
    else $display("FAIL divzero");
    a = 16'd3; b = 8'd100; #1;
    if (q == 16'd0 && r == 8'd3) $display("PASS small");
    else $display("FAIL small");
    $finish;
  end""")

_add("radix2_div",
     "A sequential restoring radix-2 divider with start and done.",
     """module radix2_div (input clk, input rst_n, input start,
                   input [7:0] dividend, input [7:0] divisor,
                   output reg [7:0] quotient, output reg [7:0] remainder,
                   output reg done);
  reg [8:0] rem;
  reg [7:0] dvd, d;
  reg [3:0] cnt;
  reg busy;
  always @(posedge clk or negedge rst_n)
    if (!rst_n) begin
      rem <= 9'd0; dvd <= 8'd0; d <= 8'd0; cnt <= 4'd0; busy <= 1'b0;
      done <= 1'b0; quotient <= 8'd0; remainder <= 8'd0;
    end else if (start && !busy) begin
      rem <= 9'd0;
      dvd <= dividend;
      d <= divisor;
      cnt <= 4'd0;
      busy <= 1'b1;
      done <= 1'b0;
    end else if (busy) begin
      if ({rem[7:0], dvd[7]} >= {1'b0, d}) begin
        rem <= {rem[7:0], dvd[7]} - {1'b0, d};
        dvd <= {dvd[6:0], 1'b1};
      end else begin
        rem <= {rem[7:0], dvd[7]};
        dvd <= {dvd[6:0], 1'b0};
      end
      if (cnt == 4'd7) begin
        busy <= 1'b0;
        done <= 1'b1;
      end else
        cnt <= cnt + 4'd1;
    end else if (done) begin
      quotient <= dvd;
      remainder <= rem[7:0];
      done <= 1'b0;
    end
endmodule
""",
     """  reg clk, rst_n, start; reg [7:0] dividend, divisor;
  wire [7:0] quotient, remainder; wire done;
  radix2_div dut (.clk(clk), .rst_n(rst_n), .start(start),
                  .dividend(dividend), .divisor(divisor),
                  .quotient(quotient), .remainder(remainder),
                  .done(done));
""" + _CLK + """  initial begin
    clk = 0; rst_n = 0; start = 0; dividend = 8'd100; divisor = 8'd9;
    #12 rst_n = 1; start = 1;
    #10 start = 0;
    #140;
    if (quotient == 8'd11 && remainder == 8'd1) $display("PASS div");
    else $display("FAIL div q=%0d r=%0d", quotient, remainder);
    $finish;
  end""")

_add("Johnson_Counter",
     "A 4-bit Johnson (twisted ring) counter.",
     """module Johnson_Counter (input clk, input rst_n,
                        output reg [3:0] q);
  always @(posedge clk or negedge rst_n)
    if (!rst_n) q <= 4'd0;
    else q <= {~q[0], q[3:1]};
endmodule
""",
     """  reg clk, rst_n; wire [3:0] q;
  Johnson_Counter dut (.clk(clk), .rst_n(rst_n), .q(q));
""" + _CLK + """  initial begin
    clk = 0; rst_n = 0;
    #12 rst_n = 1;
    #10;
    if (q == 4'b1000) $display("PASS s1"); else $display("FAIL s1 %b", q);
    #10;
    if (q == 4'b1100) $display("PASS s2"); else $display("FAIL s2 %b", q);
    #10;
    if (q == 4'b1110) $display("PASS s3"); else $display("FAIL s3 %b", q);
    $finish;
  end""")

_add("right_shifter",
     "An 8-bit right shifter shifting serial input d into the MSB.",
     """module right_shifter (input clk, input d, output reg [7:0] q);
  always @(posedge clk)
    q <= {d, q[7:1]};
endmodule
""",
     """  reg clk, d; wire [7:0] q;
  right_shifter dut (.clk(clk), .d(d), .q(q));
  initial begin
    clk = 0; d = 1;
    dut.q = 8'd0;
    repeat (2) begin #2 clk = 1; #2 clk = 0; end
    if (q == 8'b1100_0000) $display("PASS shift");
    else $display("FAIL shift got %b", q);
    $finish;
  end""")

_add("mux",
     "A 16-bit wide 2-to-1 multiplexer.",
     """module mux (input [15:0] a, input [15:0] b, input sel,
            output [15:0] y);
  assign y = sel ? b : a;
endmodule
""",
     """  reg [15:0] a, b; reg sel; wire [15:0] y;
  mux dut (.a(a), .b(b), .sel(sel), .y(y));
  initial begin
    a = 16'h1234; b = 16'hABCD;
    sel = 0; #1;
    if (y == 16'h1234) $display("PASS a"); else $display("FAIL a");
    sel = 1; #1;
    if (y == 16'hABCD) $display("PASS b"); else $display("FAIL b");
    $finish;
  end""")

_add("counter_12",
     "A modulo-12 counter with synchronous reset and enable.",
     """module counter_12 (input clk, input rst_n, input valid_count,
                   output reg [3:0] out);
  always @(posedge clk or negedge rst_n)
    if (!rst_n) out <= 4'd0;
    else if (valid_count) begin
      if (out == 4'd11) out <= 4'd0;
      else out <= out + 4'd1;
    end
endmodule
""",
     """  reg clk, rst_n, valid_count; wire [3:0] out;
  counter_12 dut (.clk(clk), .rst_n(rst_n), .valid_count(valid_count),
                  .out(out));
""" + _CLK + """  integer i;
  initial begin
    clk = 0; rst_n = 0; valid_count = 0;
    #12 rst_n = 1; valid_count = 1;
    for (i = 0; i < 11; i = i + 1) #10;
    if (out == 4'd11) $display("PASS eleven");
    else $display("FAIL eleven got %0d", out);
    #10;
    if (out == 4'd0) $display("PASS wrap"); else $display("FAIL wrap");
    valid_count = 0; #20;
    if (out == 4'd0) $display("PASS gate"); else $display("FAIL gate");
    $finish;
  end""")

_add("freq_div",
     "Divide the input clock by 2 and by 4.",
     """module freq_div (input clk, input rst_n,
                 output reg clk_div2, output reg [1:0] cnt4,
                 output clk_div4);
  always @(posedge clk or negedge rst_n)
    if (!rst_n) clk_div2 <= 1'b0;
    else clk_div2 <= ~clk_div2;
  always @(posedge clk or negedge rst_n)
    if (!rst_n) cnt4 <= 2'd0;
    else cnt4 <= cnt4 + 2'd1;
  assign clk_div4 = cnt4[1];
endmodule
""",
     """  reg clk, rst_n; wire clk_div2, clk_div4; wire [1:0] cnt4;
  freq_div dut (.clk(clk), .rst_n(rst_n), .clk_div2(clk_div2),
                .cnt4(cnt4), .clk_div4(clk_div4));
""" + _CLK + """  initial begin
    clk = 0; rst_n = 0;
    #12 rst_n = 1;
    #10;
    if (clk_div2 == 1) $display("PASS half1"); else $display("FAIL half1");
    if (cnt4 == 2'd1) $display("PASS cnt1"); else $display("FAIL cnt1");
    #10;
    if (clk_div2 == 0) $display("PASS half2"); else $display("FAIL half2");
    #10;
    if (clk_div4 == 1) $display("PASS quarter");
    else $display("FAIL quarter");
    #20;
    if (clk_div4 == 0) $display("PASS quarterlow");
    else $display("FAIL quarterlow");
    $finish;
  end""")

_add("signal_generator",
     "A triangle wave generator counting 0 up to 10 and back down.",
     """module signal_generator (input clk, input rst_n,
                         output reg [4:0] wave);
  reg up;
  always @(posedge clk or negedge rst_n)
    if (!rst_n) begin
      wave <= 5'd0; up <= 1'b1;
    end else if (up) begin
      if (wave == 5'd10) begin
        wave <= 5'd9; up <= 1'b0;
      end else
        wave <= wave + 5'd1;
    end else begin
      if (wave == 5'd0) begin
        wave <= 5'd1; up <= 1'b1;
      end else
        wave <= wave - 5'd1;
    end
endmodule
""",
     """  reg clk, rst_n; wire [4:0] wave;
  signal_generator dut (.clk(clk), .rst_n(rst_n), .wave(wave));
""" + _CLK + """  integer i; reg [4:0] peak;
  initial begin
    clk = 0; rst_n = 0; peak = 0;
    #12 rst_n = 1;
    for (i = 0; i < 10; i = i + 1) #10;
    if (wave == 5'd10) $display("PASS top");
    else $display("FAIL top got %0d", wave);
    #30;
    if (wave == 5'd7) $display("PASS down");
    else $display("FAIL down got %0d", wave);
    $finish;
  end""")

_add("serial2parallel",
     "Collect 8 serial bits MSB-first into a byte with a valid pulse.",
     """module serial2parallel (input clk, input rst_n, input din,
                        output reg [7:0] dout, output reg valid);
  reg [2:0] cnt;
  always @(posedge clk or negedge rst_n)
    if (!rst_n) begin
      cnt <= 3'd0; dout <= 8'd0; valid <= 1'b0;
    end else begin
      dout <= {dout[6:0], din};
      if (cnt == 3'd7) begin
        cnt <= 3'd0;
        valid <= 1'b1;
      end else begin
        cnt <= cnt + 3'd1;
        valid <= 1'b0;
      end
    end
endmodule
""",
     """  reg clk, rst_n, din; wire [7:0] dout; wire valid;
  serial2parallel dut (.clk(clk), .rst_n(rst_n), .din(din),
                       .dout(dout), .valid(valid));
""" + _CLK + """  reg [7:0] pattern; integer i;
  initial begin
    clk = 0; rst_n = 0; din = 0; pattern = 8'h5C;
    #12 rst_n = 1;
    for (i = 7; i >= 0; i = i - 1) begin
      din = pattern[i]; #10;
      if (i == 4 && valid) $display("FAIL early valid");
    end
    if (valid && dout == pattern) $display("PASS byte");
    else $display("FAIL byte got %h v=%b", dout, valid);
    pattern = 8'hA3;
    for (i = 7; i >= 0; i = i - 1) begin
      din = pattern[i]; #10;
      if (i == 3 && valid) $display("FAIL midstream valid");
    end
    if (valid && dout == pattern) $display("PASS byte2");
    else $display("FAIL byte2 got %h v=%b", dout, valid);
    $finish;
  end""")

_add("parallel2serial",
     "Emit a 4-bit word serially MSB-first with a valid flag.",
     """module parallel2serial (input clk, input rst_n, input [3:0] d,
                        output valid_out, output dout);
  reg [3:0] data;
  reg [1:0] cnt;
  always @(posedge clk or negedge rst_n)
    if (!rst_n) begin
      data <= 4'd0; cnt <= 2'd0;
    end else if (cnt == 2'd3) begin
      data <= d;
      cnt <= 2'd0;
    end else begin
      data <= {data[2:0], 1'b0};
      cnt <= cnt + 2'd1;
    end
  assign dout = data[3];
  assign valid_out = 1'b1;
endmodule
""",
     """  reg clk, rst_n; reg [3:0] d; wire valid_out, dout;
  parallel2serial dut (.clk(clk), .rst_n(rst_n), .d(d),
                       .valid_out(valid_out), .dout(dout));
""" + _CLK + """  initial begin
    clk = 0; rst_n = 0; d = 4'b1010;
    #12 rst_n = 1;
    #40;   // first reload happens when cnt wraps
    #2;
    if (dout == 1'b1) $display("PASS b3"); else $display("FAIL b3");
    #10;
    if (dout == 1'b0) $display("PASS b2"); else $display("FAIL b2");
    #10;
    if (dout == 1'b1) $display("PASS b1"); else $display("FAIL b1");
    #10;
    if (dout == 1'b0) $display("PASS b0"); else $display("FAIL b0");
    d = 4'b0110; #4;
    if (dout == 1'b0) $display("PASS r3"); else $display("FAIL r3");
    #10;
    if (dout == 1'b1) $display("PASS r2"); else $display("FAIL r2");
    $finish;
  end""")

_add("pulse_detect",
     "Detect a 0-1-0 pulse on the input over three cycles.",
     """module pulse_detect (input clk, input rst_n, input data_in,
                     output reg data_out);
  reg [1:0] state;
  always @(posedge clk or negedge rst_n)
    if (!rst_n) begin
      state <= 2'd0; data_out <= 1'b0;
    end else begin
      data_out <= 1'b0;
      case (state)
        2'd0: if (data_in) state <= 2'd1;
        2'd1: if (!data_in) begin
          state <= 2'd0;
          data_out <= 1'b1;
        end
        default: state <= 2'd0;
      endcase
    end
endmodule
""",
     """  reg clk, rst_n, data_in; wire data_out;
  pulse_detect dut (.clk(clk), .rst_n(rst_n), .data_in(data_in),
                    .data_out(data_out));
""" + _CLK + """  initial begin
    clk = 0; rst_n = 0; data_in = 0;
    #12 rst_n = 1;
    data_in = 1; #10;
    data_in = 0; #10;
    #2;
    if (data_out) $display("PASS pulse"); else $display("FAIL pulse");
    #10;
    if (!data_out) $display("PASS clear"); else $display("FAIL clear");
    $finish;
  end""")

_add("edge_detect",
     "Detect rising and falling edges of a slow input signal.",
     """module edge_detect (input clk, input rst_n, input a,
                    output reg rise, output reg down);
  reg last;
  always @(posedge clk or negedge rst_n)
    if (!rst_n) begin
      last <= 1'b0; rise <= 1'b0; down <= 1'b0;
    end else begin
      rise <= a & ~last;
      down <= ~a & last;
      last <= a;
    end
endmodule
""",
     """  reg clk, rst_n, a; wire rise, down;
  edge_detect dut (.clk(clk), .rst_n(rst_n), .a(a), .rise(rise),
                   .down(down));
""" + _CLK + """  initial begin
    clk = 0; rst_n = 0; a = 0;
    #12 rst_n = 1;
    a = 1; #10; #2;
    if (rise && !down) $display("PASS rise"); else $display("FAIL rise");
    #10;
    if (!rise) $display("PASS riseclr"); else $display("FAIL riseclr");
    a = 0; #4;
    if (down) $display("PASS down"); else $display("FAIL down");
    $finish;
  end""")

_add("fsm",
     "A Mealy FSM detecting the serial pattern 1011 with overlap.",
     """module fsm (input clk, input rst_n, input in, output reg match);
  reg [1:0] state;
  always @(posedge clk or negedge rst_n)
    if (!rst_n) begin
      state <= 2'd0; match <= 1'b0;
    end else begin
      match <= 1'b0;
      case (state)
        2'd0: state <= in ? 2'd1 : 2'd0;
        2'd1: state <= in ? 2'd1 : 2'd2;
        2'd2: state <= in ? 2'd3 : 2'd0;
        2'd3: begin
          if (in) begin
            match <= 1'b1;
            state <= 2'd1;
          end else
            state <= 2'd2;
        end
      endcase
    end
endmodule
""",
     """  reg clk, rst_n, in; wire match;
  fsm dut (.clk(clk), .rst_n(rst_n), .in(in), .match(match));
""" + _CLK + """  initial begin
    clk = 0; rst_n = 0; in = 0;
    #12 rst_n = 1;
    in = 1; #10;
    in = 0; #10;
    in = 1; #10;
    if (match) $display("FAIL premature");
    in = 1; #10;
    #2;
    if (match) $display("PASS 1011"); else $display("FAIL 1011");
    #8;
    in = 0; #10;
    if (!match) $display("PASS clear"); else $display("FAIL clear");
    in = 1; #10; in = 1; #10; in = 1; #10;
    if (!match) $display("PASS no111"); else $display("FAIL no111");
    $finish;
  end""")

_add("width_8to16",
     "Combine two sequential 8-bit inputs into one 16-bit output.",
     """module width_8to16 (input clk, input rst_n, input valid_in,
                    input [7:0] data_in, output reg valid_out,
                    output reg [15:0] data_out);
  reg [7:0] hold;
  reg have;
  always @(posedge clk or negedge rst_n)
    if (!rst_n) begin
      hold <= 8'd0; have <= 1'b0; valid_out <= 1'b0; data_out <= 16'd0;
    end else if (valid_in) begin
      if (have) begin
        data_out <= {hold, data_in};
        valid_out <= 1'b1;
        have <= 1'b0;
      end else begin
        hold <= data_in;
        have <= 1'b1;
        valid_out <= 1'b0;
      end
    end else
      valid_out <= 1'b0;
endmodule
""",
     """  reg clk, rst_n, valid_in; reg [7:0] data_in;
  wire valid_out; wire [15:0] data_out;
  width_8to16 dut (.clk(clk), .rst_n(rst_n), .valid_in(valid_in),
                   .data_in(data_in), .valid_out(valid_out),
                   .data_out(data_out));
""" + _CLK + """  initial begin
    clk = 0; rst_n = 0; valid_in = 0; data_in = 0;
    #12 rst_n = 1; valid_in = 1;
    data_in = 8'hAB; #10;
    if (valid_out) $display("FAIL half");
    data_in = 8'hCD; #10;
    valid_in = 0; #2;
    if (valid_out && data_out == 16'hABCD) $display("PASS pair");
    else $display("FAIL pair got %h", data_out);
    #10;
    if (!valid_out) $display("PASS clear"); else $display("FAIL clear");
    valid_in = 1;
    data_in = 8'h12; #10;
    data_in = 8'h34; #8;
    valid_in = 0; #2;
    if (valid_out && data_out == 16'h1234) $display("PASS pair2");
    else $display("FAIL pair2 got %h", data_out);
    $finish;
  end""")

_add("traffic_light",
     "A traffic light with green 4, yellow 1, red 3 cycle phases.",
     """module traffic_light (input clk, input rst_n, output reg green,
                      output reg yellow, output reg red);
  reg [2:0] t;
  always @(posedge clk or negedge rst_n)
    if (!rst_n) t <= 3'd0;
    else if (t == 3'd7) t <= 3'd0;
    else t <= t + 3'd1;
  always @(*) begin
    green = t < 3'd4;
    yellow = t == 3'd4;
    red = t > 3'd4;
  end
endmodule
""",
     """  reg clk, rst_n; wire green, yellow, red;
  traffic_light dut (.clk(clk), .rst_n(rst_n), .green(green),
                     .yellow(yellow), .red(red));
""" + _CLK + """  initial begin
    clk = 0; rst_n = 0;
    #12 rst_n = 1;
    if (green) $display("PASS g"); else $display("FAIL g");
    #40;
    if (yellow) $display("PASS y"); else $display("FAIL y");
    #10;
    if (red) $display("PASS r"); else $display("FAIL r");
    #30;
    if (green) $display("PASS wrap"); else $display("FAIL wrap");
    $finish;
  end""")

_add("calendar",
     "A seconds/minutes/hours clock (60/60/24).",
     """module calendar (input clk, input rst_n, output reg [5:0] secs,
                 output reg [5:0] mins, output reg [5:0] hours);
  always @(posedge clk or negedge rst_n)
    if (!rst_n) begin
      secs <= 6'd0; mins <= 6'd0; hours <= 6'd0;
    end else begin
      if (secs == 6'd59) begin
        secs <= 6'd0;
        if (mins == 6'd59) begin
          mins <= 6'd0;
          if (hours == 6'd23) hours <= 6'd0;
          else hours <= hours + 6'd1;
        end else
          mins <= mins + 6'd1;
      end else
        secs <= secs + 6'd1;
    end
endmodule
""",
     """  reg clk, rst_n; wire [5:0] secs, mins, hours;
  calendar dut (.clk(clk), .rst_n(rst_n), .secs(secs), .mins(mins),
                .hours(hours));
""" + _CLK + """  integer i;
  initial begin
    clk = 0; rst_n = 0;
    #12 rst_n = 1;
    for (i = 0; i < 61; i = i + 1) #10;
    if (mins == 6'd1 && secs == 6'd1) $display("PASS rollover");
    else $display("FAIL rollover m=%0d s=%0d", mins, secs);
    dut.secs = 6'd59; dut.mins = 6'd59; dut.hours = 6'd23;
    #10;
    if (hours == 6'd0 && mins == 6'd0 && secs == 6'd0)
      $display("PASS midnight");
    else $display("FAIL midnight h=%0d m=%0d s=%0d", hours, mins, secs);
    dut.secs = 6'd59; dut.mins = 6'd3; dut.hours = 6'd5;
    #10;
    if (hours == 6'd5 && mins == 6'd4 && secs == 6'd0)
      $display("PASS minwrap");
    else $display("FAIL minwrap");
    $finish;
  end""")

_add("RAM",
     "An 8x4 synchronous-write, asynchronous-read RAM.",
     """module RAM (input clk, input we, input [2:0] waddr,
            input [3:0] wdata, input [2:0] raddr,
            output [3:0] rdata);
  reg [3:0] mem [0:7];
  always @(posedge clk)
    if (we) mem[waddr] <= wdata;
  assign rdata = mem[raddr];
endmodule
""",
     """  reg clk, we; reg [2:0] waddr, raddr; reg [3:0] wdata;
  wire [3:0] rdata;
  RAM dut (.clk(clk), .we(we), .waddr(waddr), .wdata(wdata),
           .raddr(raddr), .rdata(rdata));
  initial begin
    clk = 0; we = 1; waddr = 3'd2; wdata = 4'hA;
    #2 clk = 1; #2 clk = 0;
    waddr = 3'd5; wdata = 4'h7;
    #2 clk = 1; #2 clk = 0;
    we = 0; raddr = 3'd2; #1;
    if (rdata == 4'hA) $display("PASS r2"); else $display("FAIL r2");
    raddr = 3'd5; #1;
    if (rdata == 4'h7) $display("PASS r5"); else $display("FAIL r5");
    $finish;
  end""")

_add("asyn_fifo",
     "A dual-clock 4-entry FIFO with empty and full flags.",
     """module asyn_fifo (input wclk, input rclk, input rst_n,
                  input push, input pop, input [7:0] din,
                  output [7:0] dout, output empty, output full);
  reg [7:0] mem [0:3];
  reg [2:0] wptr, rptr;
  always @(posedge wclk or negedge rst_n)
    if (!rst_n) wptr <= 3'd0;
    else if (push && !full) begin
      mem[wptr[1:0]] <= din;
      wptr <= wptr + 3'd1;
    end
  always @(posedge rclk or negedge rst_n)
    if (!rst_n) rptr <= 3'd0;
    else if (pop && !empty) rptr <= rptr + 3'd1;
  assign dout = mem[rptr[1:0]];
  assign empty = wptr == rptr;
  assign full = (wptr[1:0] == rptr[1:0]) && (wptr[2] != rptr[2]);
endmodule
""",
     """  reg wclk, rclk, rst_n, push, pop; reg [7:0] din;
  wire [7:0] dout; wire empty, full;
  asyn_fifo dut (.wclk(wclk), .rclk(rclk), .rst_n(rst_n), .push(push),
                 .pop(pop), .din(din), .dout(dout), .empty(empty),
                 .full(full));
  always #4 wclk = ~wclk;
  always #6 rclk = ~rclk;
  initial begin
    wclk = 0; rclk = 0; rst_n = 0; push = 0; pop = 0; din = 0;
    #10 rst_n = 1;
    if (empty) $display("PASS empty"); else $display("FAIL empty");
    push = 1; din = 8'h11;
    #8 din = 8'h22;
    #8 push = 0;
    #4;
    if (!empty) $display("PASS filled"); else $display("FAIL filled");
    if (dout == 8'h11) $display("PASS head"); else $display("FAIL head");
    pop = 1; #12; pop = 0; #2;
    if (dout == 8'h22) $display("PASS second");
    else $display("FAIL second got %h", dout);
    $finish;
  end""")

_add("alu",
     "An 8-bit ALU: add, sub, and, or, xor, set-less-than.",
     """module alu (input [7:0] a, input [7:0] b, input [2:0] op,
            output reg [7:0] y);
  always @(*)
    case (op)
      3'd0: y = a + b;
      3'd1: y = a - b;
      3'd2: y = a & b;
      3'd3: y = a | b;
      3'd4: y = a ^ b;
      default: y = (a < b) ? 8'd1 : 8'd0;
    endcase
endmodule
""",
     """  reg [7:0] a, b; reg [2:0] op; wire [7:0] y;
  alu dut (.a(a), .b(b), .op(op), .y(y));
  initial begin
    a = 8'd30; b = 8'd12;
    op = 3'd0; #1;
    if (y == 8'd42) $display("PASS add"); else $display("FAIL add");
    op = 3'd1; #1;
    if (y == 8'd18) $display("PASS sub"); else $display("FAIL sub");
    op = 3'd2; #1;
    if (y == (8'd30 & 8'd12)) $display("PASS and");
    else $display("FAIL and");
    op = 3'd3; #1;
    if (y == (8'd30 | 8'd12)) $display("PASS or");
    else $display("FAIL or");
    op = 3'd4; #1;
    if (y == (8'd30 ^ 8'd12)) $display("PASS xor");
    else $display("FAIL xor");
    op = 3'd5; #1;
    if (y == 8'd0) $display("PASS slt0"); else $display("FAIL slt0");
    a = 8'd3; #1;
    if (y == 8'd1) $display("PASS slt1"); else $display("FAIL slt1");
    $finish;
  end""")

_add("pe",
     "A multiply-accumulate processing element with clear.",
     """module pe (input clk, input rst_n, input [7:0] a, input [7:0] b,
           output reg [15:0] acc);
  always @(posedge clk or negedge rst_n)
    if (!rst_n) acc <= 16'd0;
    else acc <= acc + a * b;
endmodule
""",
     """  reg clk, rst_n; reg [7:0] a, b; wire [15:0] acc;
  pe dut (.clk(clk), .rst_n(rst_n), .a(a), .b(b), .acc(acc));
""" + _CLK + """  initial begin
    clk = 0; rst_n = 0; a = 8'd3; b = 8'd5;
    #12 rst_n = 1;
    #10;
    if (acc == 16'd15) $display("PASS mac1");
    else $display("FAIL mac1 got %0d", acc);
    a = 8'd10; b = 8'd10; #10;
    if (acc == 16'd115) $display("PASS mac2");
    else $display("FAIL mac2 got %0d", acc);
    $finish;
  end""")


@lru_cache(maxsize=1)
def rtllm_suite() -> tuple[Problem, ...]:
    """All 29 RTLLM-style problems with evenly spaced difficulties."""
    difficulties = spaced_difficulties(len(_RAW))
    problems = []
    for (name, middle, reference, testbench), difficulty in \
            zip(_RAW, difficulties):
        high = describe_source(reference).text
        problems.append(Problem(
            name=name, suite="rtllm", tier="rtllm", difficulty=difficulty,
            prompts={"low": f"implement {name}", "middle": middle,
                     "high": high},
            reference=reference, testbench=testbench))
    return tuple(problems)


@lru_cache(maxsize=1)
def rtllm_table5_subset() -> tuple[Problem, ...]:
    """The 18-design subset Table 5 reports."""
    by_name = {problem.name: problem for problem in rtllm_suite()}
    return tuple(by_name[name] for name in TABLE5_NAMES)
