"""Thakur-et-al.-style benchmark suite: 17 problems × 3 prompt levels.

The original benchmark (Thakur et al., DATE 2023) spans basic (4),
intermediate (8) and advanced (5) problems with low/middle/high prompt
detail.  We rebuild the same structure with equivalent designs at the same
difficulty tiers; the high-detail prompt is generated from the reference
implementation by the repo's own AST→NL rules, mirroring how the paper
aligns descriptions with code.
"""

from __future__ import annotations

from functools import lru_cache

from ..nl import describe_source
from .problems import Problem, spaced_difficulties


def _problem(name: str, tier: str, low: str, middle: str,
             reference: str, testbench: str) -> Problem:
    high = describe_source(reference).text
    return Problem(name=name, suite="thakur", tier=tier, difficulty=0.0,
                   prompts={"low": low, "middle": middle, "high": high},
                   reference=reference, testbench=testbench)


def _tb(body: str) -> str:
    return f"module tb;\n{body}\nendmodule\n"


_RAW: list[Problem] = []


def _add(problem: Problem) -> None:
    _RAW.append(problem)


# -- basic -------------------------------------------------------------

_add(_problem(
    "basic1", "basic",
    "a wire connecting input to output",
    "Write a Verilog module named basic1 with one input a and one output "
    "y where y simply follows a.",
    """module basic1 (input a, output y);
  assign y = a;
endmodule
""",
    _tb("""  reg a; wire y;
  basic1 dut (.a(a), .b(y));
  initial begin
    a = 0; #1;
    if (y == 0) $display("PASS 0"); else $display("FAIL 0");
    a = 1; #1;
    if (y == 1) $display("PASS 1"); else $display("FAIL 1");
    $finish;
  end""").replace(".b(y)", ".y(y)")))

_add(_problem(
    "basic2", "basic",
    "a two input and gate",
    "Write a Verilog module named basic2 computing the logical AND of "
    "inputs a and b on output y.",
    """module basic2 (input a, input b, output y);
  assign y = a & b;
endmodule
""",
    _tb("""  reg a, b; wire y;
  basic2 dut (.a(a), .b(b), .y(y));
  integer i;
  initial begin
    for (i = 0; i < 4; i = i + 1) begin
      a = i[1]; b = i[0]; #1;
      if (y == (a & b)) $display("PASS %0d", i);
      else $display("FAIL %0d", i);
    end
    $finish;
  end""")))

_add(_problem(
    "basic3", "basic",
    "a 2 to 1 multiplexer",
    "Write a Verilog module named basic3: a 2-to-1 multiplexer with "
    "4-bit data inputs a and b, select s, output y.",
    """module basic3 (input [3:0] a, input [3:0] b, input s,
               output [3:0] y);
  assign y = s ? b : a;
endmodule
""",
    _tb("""  reg [3:0] a, b; reg s; wire [3:0] y;
  basic3 dut (.a(a), .b(b), .s(s), .y(y));
  initial begin
    a = 4'h3; b = 4'hC;
    s = 0; #1;
    if (y == 4'h3) $display("PASS sel0"); else $display("FAIL sel0");
    s = 1; #1;
    if (y == 4'hC) $display("PASS sel1"); else $display("FAIL sel1");
    $finish;
  end""")))

_add(_problem(
    "basic4", "basic",
    "a half adder",
    "Write a Verilog module named basic4: a half adder with inputs a and "
    "b, sum output s and carry output c.",
    """module basic4 (input a, input b, output s, output c);
  assign s = a ^ b;
  assign c = a & b;
endmodule
""",
    _tb("""  reg a, b; wire s, c;
  basic4 dut (.a(a), .b(b), .s(s), .c(c));
  integer i;
  initial begin
    for (i = 0; i < 4; i = i + 1) begin
      a = i[1]; b = i[0]; #1;
      if ({c, s} == {1'b0, a} + {1'b0, b}) $display("PASS %0d", i);
      else $display("FAIL %0d", i);
    end
    $finish;
  end""")))

# -- intermediate ----------------------------------------------------------

_add(_problem(
    "intermediate1", "intermediate",
    "an 8 bit counter with reset and enable",
    "Write a Verilog module intermediate1: an 8-bit counter with "
    "synchronous reset rst and enable en, counting on the rising edge "
    "of clk.",
    """module intermediate1 (input clk, input rst, input en,
                      output reg [7:0] count);
  always @(posedge clk)
    if (rst) count <= 8'd0;
    else if (en) count <= count + 8'd1;
endmodule
""",
    _tb("""  reg clk, rst, en; wire [7:0] count;
  intermediate1 dut (.clk(clk), .rst(rst), .en(en), .count(count));
  always #5 clk = ~clk;
  initial begin
    clk = 0; rst = 1; en = 0;
    #12 rst = 0; en = 1;
    #30;
    if (count == 8'd3) $display("PASS count3");
    else $display("FAIL count3 got %0d", count);
    en = 0; #20;
    if (count == 8'd3) $display("PASS hold");
    else $display("FAIL hold");
    $finish;
  end""")))

_add(_problem(
    "intermediate2", "intermediate",
    "a rising edge detector",
    "Write a Verilog module intermediate2 that pulses output pulse for "
    "one cycle when input sig rises, using clock clk.",
    """module intermediate2 (input clk, input sig, output pulse);
  reg last;
  always @(posedge clk)
    last <= sig;
  assign pulse = sig & ~last;
endmodule
""",
    _tb("""  reg clk, sig; wire pulse;
  intermediate2 dut (.clk(clk), .sig(sig), .pulse(pulse));
  always #5 clk = ~clk;
  initial begin
    clk = 0; sig = 0;
    #12;
    sig = 1; #2;
    if (pulse == 1) $display("PASS rise"); else $display("FAIL rise");
    #10;
    if (pulse == 0) $display("PASS after"); else $display("FAIL after");
    $finish;
  end""")))

_add(_problem(
    "intermediate3", "intermediate",
    "a three state fsm",
    "Write a Verilog module intermediate3: a 3-state FSM (IDLE, RUN, "
    "DONE) advancing IDLE->RUN on go, RUN->DONE, DONE->IDLE, with "
    "synchronous reset.",
    """module intermediate3 (input clk, input rst, input go,
                      output reg [1:0] state);
  localparam IDLE = 2'd0, RUN = 2'd1, DONE = 2'd2;
  always @(posedge clk)
    if (rst) state <= IDLE;
    else case (state)
      IDLE: if (go) state <= RUN;
      RUN: state <= DONE;
      DONE: state <= IDLE;
      default: state <= IDLE;
    endcase
endmodule
""",
    _tb("""  reg clk, rst, go; wire [1:0] state;
  intermediate3 dut (.clk(clk), .rst(rst), .go(go), .state(state));
  always #5 clk = ~clk;
  initial begin
    clk = 0; rst = 1; go = 0;
    #12 rst = 0;
    if (state == 2'd0) $display("PASS idle"); else $display("FAIL idle");
    go = 1; #10; go = 0;
    if (state == 2'd1) $display("PASS run"); else $display("FAIL run");
    #10;
    if (state == 2'd2) $display("PASS done"); else $display("FAIL done");
    #10;
    if (state == 2'd0) $display("PASS wrap"); else $display("FAIL wrap");
    $finish;
  end""")))

_add(_problem(
    "intermediate4", "intermediate",
    "an 8 bit left shift register",
    "Write a Verilog module intermediate4: an 8-bit shift register that "
    "shifts in serial input d at the LSB on each rising clock edge.",
    """module intermediate4 (input clk, input d, output reg [7:0] q);
  always @(posedge clk)
    q <= {q[6:0], d};
endmodule
""",
    _tb("""  reg clk, d; wire [7:0] q;
  intermediate4 dut (.clk(clk), .d(d), .q(q));
  initial begin
    clk = 0; d = 1;
    dut.q = 8'd0;
    repeat (3) begin #2 clk = 1; #2 clk = 0; end
    if (q == 8'b0000_0111) $display("PASS shift");
    else $display("FAIL shift got %b", q);
    d = 0;
    repeat (1) begin #2 clk = 1; #2 clk = 0; end
    if (q == 8'b0000_1110) $display("PASS shift0");
    else $display("FAIL shift0 got %b", q);
    $finish;
  end""")))

_add(_problem(
    "intermediate5", "intermediate",
    "a 4 bit gray code counter",
    "Write a Verilog module intermediate5: a 4-bit Gray-code counter "
    "with synchronous reset, output code.",
    """module intermediate5 (input clk, input rst, output [3:0] code);
  reg [3:0] bin;
  always @(posedge clk)
    if (rst) bin <= 4'd0;
    else bin <= bin + 4'd1;
  assign code = bin ^ (bin >> 1);
endmodule
""",
    _tb("""  reg clk, rst; wire [3:0] code;
  intermediate5 dut (.clk(clk), .rst(rst), .code(code));
  always #5 clk = ~clk;
  initial begin
    clk = 0; rst = 1;
    #12 rst = 0;
    #10;
    if (code == 4'b0001) $display("PASS g1"); else $display("FAIL g1");
    #10;
    if (code == 4'b0011) $display("PASS g2"); else $display("FAIL g2");
    #10;
    if (code == 4'b0010) $display("PASS g3"); else $display("FAIL g3");
    $finish;
  end""")))

_add(_problem(
    "intermediate6", "intermediate",
    "a pwm generator",
    "Write a Verilog module intermediate6: a 4-bit PWM generator whose "
    "output is high while the free-running counter is below duty.",
    """module intermediate6 (input clk, input rst, input [3:0] duty,
                      output out);
  reg [3:0] cnt;
  always @(posedge clk)
    if (rst) cnt <= 4'd0;
    else cnt <= cnt + 4'd1;
  assign out = cnt < duty;
endmodule
""",
    _tb("""  reg clk, rst; reg [3:0] duty; wire out;
  intermediate6 dut (.clk(clk), .rst(rst), .duty(duty), .out(out));
  always #5 clk = ~clk;
  integer high;
  integer i;
  initial begin
    clk = 0; rst = 1; duty = 4'd4; high = 0;
    #12 rst = 0;
    for (i = 0; i < 16; i = i + 1) begin
      #10;
      if (out) high = high + 1;
    end
    if (high == 4) $display("PASS duty"); else
      $display("FAIL duty got %0d", high);
    duty = 4'd0; high = 0;
    for (i = 0; i < 8; i = i + 1) begin
      #10;
      if (out) high = high + 1;
    end
    if (high == 0) $display("PASS zero"); else
      $display("FAIL zero got %0d", high);
    duty = 4'd15; high = 0;
    for (i = 0; i < 16; i = i + 1) begin
      #10;
      if (out) high = high + 1;
    end
    if (high == 15) $display("PASS wide"); else
      $display("FAIL wide got %0d", high);
    rst = 1; #10; rst = 0; duty = 4'd1;
    #2;
    if (out) $display("PASS phase0"); else $display("FAIL phase0");
    #10;
    if (!out) $display("PASS phase1"); else $display("FAIL phase1");
    $finish;
  end""")))

_add(_problem(
    "intermediate7", "intermediate",
    "an 8 bit comparator",
    "Write a Verilog module intermediate7 comparing 8-bit a and b with "
    "outputs eq, lt, gt.",
    """module intermediate7 (input [7:0] a, input [7:0] b,
                      output eq, output lt, output gt);
  assign eq = a == b;
  assign lt = a < b;
  assign gt = a > b;
endmodule
""",
    _tb("""  reg [7:0] a, b; wire eq, lt, gt;
  intermediate7 dut (.a(a), .b(b), .eq(eq), .lt(lt), .gt(gt));
  initial begin
    a = 8'd5; b = 8'd5; #1;
    if (eq && !lt && !gt) $display("PASS eq"); else $display("FAIL eq");
    a = 8'd3; b = 8'd9; #1;
    if (!eq && lt && !gt) $display("PASS lt"); else $display("FAIL lt");
    a = 8'd200; b = 8'd9; #1;
    if (!eq && !lt && gt) $display("PASS gt"); else $display("FAIL gt");
    $finish;
  end""")))

_add(_problem(
    "intermediate8", "intermediate",
    "a 4 bit alu",
    "Write a Verilog module intermediate8: a 4-bit ALU with operations "
    "add, subtract, and, or selected by 2-bit op.",
    """module intermediate8 (input [3:0] a, input [3:0] b, input [1:0] op,
                      output reg [3:0] y);
  always @(*)
    case (op)
      2'b00: y = a + b;
      2'b01: y = a - b;
      2'b10: y = a & b;
      default: y = a | b;
    endcase
endmodule
""",
    _tb("""  reg [3:0] a, b; reg [1:0] op; wire [3:0] y;
  intermediate8 dut (.a(a), .b(b), .op(op), .y(y));
  initial begin
    a = 4'd9; b = 4'd3;
    op = 2'b00; #1;
    if (y == 4'd12) $display("PASS add"); else $display("FAIL add");
    op = 2'b01; #1;
    if (y == 4'd6) $display("PASS sub"); else $display("FAIL sub");
    op = 2'b10; #1;
    if (y == (4'd9 & 4'd3)) $display("PASS and"); else
      $display("FAIL and");
    op = 2'b11; #1;
    if (y == (4'd9 | 4'd3)) $display("PASS or"); else
      $display("FAIL or");
    $finish;
  end""")))

# -- advanced ----------------------------------------------------------

_add(_problem(
    "advanced1", "advanced",
    "a 3 bit lfsr",
    "Write a Verilog module advanced1: a 3-bit LFSR with taps on bits 2 "
    "and 1, synchronous load of seed when load is high.",
    """module advanced1 (input clk, input load, input [2:0] seed,
                  output reg [2:0] lfsr);
  always @(posedge clk)
    if (load) lfsr <= seed;
    else lfsr <= {lfsr[1:0], lfsr[2] ^ lfsr[1]};
endmodule
""",
    _tb("""  reg clk, load; reg [2:0] seed; wire [2:0] lfsr;
  advanced1 dut (.clk(clk), .load(load), .seed(seed), .lfsr(lfsr));
  initial begin
    clk = 0; load = 1; seed = 3'b101;
    #2 clk = 1; #2 clk = 0;
    if (lfsr == 3'b101) $display("PASS load"); else $display("FAIL load");
    load = 0;
    #2 clk = 1; #2 clk = 0;
    if (lfsr == 3'b011) $display("PASS step1");
    else $display("FAIL step1 got %b", lfsr);
    #2 clk = 1; #2 clk = 0;
    if (lfsr == 3'b111) $display("PASS step2");
    else $display("FAIL step2 got %b", lfsr);
    $finish;
  end""")))

_add(_problem(
    "advanced2", "advanced",
    "a 4 entry fifo",
    "Write a Verilog module advanced2: a 4-entry 8-bit FIFO with push, "
    "pop, empty and full flags, synchronous reset.",
    """module advanced2 (input clk, input rst, input push, input pop,
                  input [7:0] din, output [7:0] dout,
                  output empty, output full);
  reg [7:0] mem [0:3];
  reg [2:0] count;
  reg [1:0] rptr, wptr;
  assign empty = count == 0;
  assign full = count == 4;
  assign dout = mem[rptr];
  always @(posedge clk)
    if (rst) begin
      count <= 0; rptr <= 0; wptr <= 0;
    end else begin
      if (push && !full) begin
        mem[wptr] <= din;
        wptr <= wptr + 1;
        if (!(pop && !empty)) count <= count + 1;
      end
      if (pop && !empty) begin
        rptr <= rptr + 1;
        if (!(push && !full)) count <= count - 1;
      end
    end
endmodule
""",
    _tb("""  reg clk, rst, push, pop; reg [7:0] din;
  wire [7:0] dout; wire empty, full;
  advanced2 dut (.clk(clk), .rst(rst), .push(push), .pop(pop),
                 .din(din), .dout(dout), .empty(empty), .full(full));
  always #5 clk = ~clk;
  initial begin
    clk = 0; rst = 1; push = 0; pop = 0; din = 0;
    #12 rst = 0;
    if (empty) $display("PASS empty"); else $display("FAIL empty");
    push = 1; din = 8'hAA; #10; din = 8'hBB; #10;
    push = 0; #10;
    if (!empty) $display("PASS notempty"); else $display("FAIL notempty");
    if (dout == 8'hAA) $display("PASS head"); else $display("FAIL head");
    pop = 1; #10; pop = 0; #10;
    if (dout == 8'hBB) $display("PASS next"); else $display("FAIL next");
    $finish;
  end""")))

_add(_problem(
    "advanced3", "advanced",
    "a traffic light controller",
    "Write a Verilog module advanced3: a traffic light FSM cycling "
    "green(2 cycles) -> yellow(1) -> red(2) with one-hot outputs.",
    """module advanced3 (input clk, input rst, output reg green,
                  output reg yellow, output reg red);
  reg [2:0] t;
  always @(posedge clk)
    if (rst) t <= 3'd0;
    else if (t == 3'd4) t <= 3'd0;
    else t <= t + 3'd1;
  always @(*) begin
    green = t < 3'd2;
    yellow = t == 3'd2;
    red = t > 3'd2;
  end
endmodule
""",
    _tb("""  reg clk, rst; wire green, yellow, red;
  advanced3 dut (.clk(clk), .rst(rst), .green(green), .yellow(yellow),
                 .red(red));
  always #5 clk = ~clk;
  initial begin
    clk = 0; rst = 1;
    #12 rst = 0;
    if (green && !yellow && !red) $display("PASS g0");
    else $display("FAIL g0");
    #20;
    if (yellow) $display("PASS y"); else $display("FAIL y");
    #10;
    if (red) $display("PASS r"); else $display("FAIL r");
    #20;
    if (green) $display("PASS wrap"); else $display("FAIL wrap");
    $finish;
  end""")))

_add(_problem(
    "advanced4", "advanced",
    "a clock divider by 3",
    "Write a Verilog module advanced4 dividing the input clock by 3 "
    "(output high one of every three cycles) with synchronous reset.",
    """module advanced4 (input clk, input rst, output out);
  reg [1:0] cnt;
  always @(posedge clk)
    if (rst) cnt <= 2'd0;
    else if (cnt == 2'd2) cnt <= 2'd0;
    else cnt <= cnt + 2'd1;
  assign out = cnt == 2'd2;
endmodule
""",
    _tb("""  reg clk, rst; wire out;
  advanced4 dut (.clk(clk), .rst(rst), .out(out));
  always #5 clk = ~clk;
  integer highs; integer i;
  initial begin
    clk = 0; rst = 1; highs = 0;
    #12 rst = 0;
    for (i = 0; i < 9; i = i + 1) begin
      #10;
      if (out) highs = highs + 1;
    end
    if (highs == 3) $display("PASS div3");
    else $display("FAIL div3 got %0d", highs);
    $finish;
  end""")))

_add(_problem(
    "advanced5", "advanced",
    "a serial to parallel converter",
    "Write a Verilog module advanced5: collect 8 serial bits (MSB "
    "first) into dout and pulse valid when a byte completes.",
    """module advanced5 (input clk, input rst, input din,
                  output reg [7:0] dout, output reg valid);
  reg [2:0] cnt;
  always @(posedge clk)
    if (rst) begin
      cnt <= 3'd0;
      valid <= 1'b0;
      dout <= 8'd0;
    end else begin
      dout <= {dout[6:0], din};
      if (cnt == 3'd7) begin
        cnt <= 3'd0;
        valid <= 1'b1;
      end else begin
        cnt <= cnt + 3'd1;
        valid <= 1'b0;
      end
    end
endmodule
""",
    _tb("""  reg clk, rst, din; wire [7:0] dout; wire valid;
  advanced5 dut (.clk(clk), .rst(rst), .din(din), .dout(dout),
                 .valid(valid));
  always #5 clk = ~clk;
  reg [7:0] pattern; integer i;
  initial begin
    clk = 0; rst = 1; din = 0; pattern = 8'hA7;
    #12 rst = 0;
    for (i = 7; i >= 0; i = i - 1) begin
      din = pattern[i];
      #10;
      if (i == 4 && valid) $display("FAIL early valid");
    end
    if (valid) $display("PASS valid"); else $display("FAIL valid");
    if (dout == pattern) $display("PASS data");
    else $display("FAIL data got %h", dout);
    pattern = 8'h39;
    for (i = 7; i >= 0; i = i - 1) begin
      din = pattern[i];
      #10;
      if (i == 7 && valid) $display("FAIL still valid");
    end
    if (valid && dout == pattern) $display("PASS byte2");
    else $display("FAIL byte2");
    $finish;
  end""")))


@lru_cache(maxsize=1)
def thakur_suite() -> tuple[Problem, ...]:
    """The 17 problems with per-tier evenly spaced difficulties."""
    by_tier: dict[str, list[Problem]] = {}
    for problem in _RAW:
        by_tier.setdefault(problem.tier, []).append(problem)
    final: dict[str, Problem] = {}
    for tier, tier_problems in by_tier.items():
        for problem, difficulty in zip(tier_problems,
                                       spaced_difficulties(
                                           len(tier_problems))):
            final[problem.name] = Problem(
                name=problem.name, suite=problem.suite, tier=problem.tier,
                difficulty=difficulty, prompts=problem.prompts,
                reference=problem.reference, testbench=problem.testbench)
    return tuple(final[p.name] for p in _RAW)
