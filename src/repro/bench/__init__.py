"""Benchmark suites: Thakur-style (17×3), RTLLM-style (29), script-gen (5)."""

from .problems import PROMPT_LEVELS, Problem, spaced_difficulties
from .registry import EVAL_SUITES, GENERATION_SUITES, generation_suite
from .rtllm import TABLE5_NAMES, rtllm_suite, rtllm_table5_subset
from .scgen import TASK_ORDER, ScriptTask, scgen_suite
from .thakur import thakur_suite

__all__ = [
    "Problem", "PROMPT_LEVELS", "spaced_difficulties",
    "thakur_suite", "rtllm_suite", "rtllm_table5_subset", "TABLE5_NAMES",
    "scgen_suite", "ScriptTask", "TASK_ORDER",
    "GENERATION_SUITES", "EVAL_SUITES", "generation_suite",
]
