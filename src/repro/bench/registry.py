"""Benchmark-suite selection by name.

One table for everything that wants a suite by id — the ``repro
evaluate`` CLI, the evaluation engine's tests and the benchmarks — so a
new suite becomes available everywhere by adding one entry here.
"""

from __future__ import annotations

from collections.abc import Callable

from .problems import Problem
from .rtllm import rtllm_suite, rtllm_table5_subset
from .thakur import thakur_suite


def _generation_all() -> tuple[Problem, ...]:
    return tuple(thakur_suite()) + tuple(rtllm_table5_subset())


#: Generation (Table-5 style) suites addressable by name.
GENERATION_SUITES: dict[str, Callable[[], tuple[Problem, ...]]] = {
    "thakur": thakur_suite,               # 17 problems x 3 levels
    "rtllm": rtllm_table5_subset,         # the paper's 18-design subset
    "rtllm-full": rtllm_suite,            # all 29 RTLLM designs
    "generation": _generation_all,        # full Table-5 problem set
}

#: Every suite id ``repro evaluate --suite`` accepts.
EVAL_SUITES: tuple[str, ...] = (
    tuple(sorted(GENERATION_SUITES)) + ("repair", "scripts"))


def generation_suite(name: str) -> tuple[Problem, ...]:
    """Resolve a generation suite by id."""
    try:
        factory = GENERATION_SUITES[name]
    except KeyError:
        raise KeyError(
            f"unknown generation suite '{name}'; available: "
            f"{', '.join(sorted(GENERATION_SUITES))}") from None
    return tuple(factory())
