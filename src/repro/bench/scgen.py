"""SiliconCompiler script-generation benchmark (paper Table 4).

Five task levels — Basic, Layout, Clock Period, Core Area, Mixed — each
with a natural-language prompt (produced by the description oracle from
the reference script, closing the same loop the paper uses), a reference
script, and an *expectation* predicate the script runner enforces on the
executed Chip.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from ..eda import BENCHMARK_SCRIPTS, Chip, Expectation
from ..llm.oracle import DescriptionOracle

TASK_ORDER = ("Basic", "Layout", "Clock Period", "Core Area", "Mixed")


@dataclass(frozen=True)
class ScriptTask:
    """One Table-4 benchmark level."""

    name: str
    prompt: str
    reference: str
    expectation: Expectation


def _expect_basic(chip: Chip) -> bool:
    return chip.result is not None and chip.result.ok


def _expect_layout(chip: Chip) -> bool:
    outline = chip.get("asic", "diearea")
    return (_expect_basic(chip) and outline is not None
            and tuple(outline[1]) == (100, 100))


def _expect_clock(chip: Chip) -> bool:
    return _expect_basic(chip) and chip.get("clock", "period") == 10


def _expect_core_area(chip: Chip) -> bool:
    outline = chip.get("asic", "diearea")
    return (_expect_basic(chip) and outline is not None
            and tuple(outline[1]) == (120, 120)
            and chip.get("constraint", "coremargin") == 2)


def _expect_mixed(chip: Chip) -> bool:
    outline = chip.get("asic", "diearea")
    return (_expect_basic(chip)
            and chip.get("clock", "period") == 12.5
            and outline is not None and tuple(outline[1]) == (150, 150)
            and chip.get("constraint", "coremargin") == 2
            and chip.get("constraint", "density") == 60)


_EXPECTATIONS: dict[str, Expectation] = {
    "Basic": _expect_basic,
    "Layout": _expect_layout,
    "Clock Period": _expect_clock,
    "Core Area": _expect_core_area,
    "Mixed": _expect_mixed,
}


@lru_cache(maxsize=1)
def scgen_suite() -> tuple[ScriptTask, ...]:
    """The five Table-4 tasks in paper order."""
    oracle = DescriptionOracle()
    tasks = []
    for name in TASK_ORDER:
        reference = BENCHMARK_SCRIPTS[name]
        tasks.append(ScriptTask(
            name=name,
            prompt=oracle.describe(reference),
            reference=reference,
            expectation=_EXPECTATIONS[name]))
    return tuple(tasks)
