"""Benchmark problem model shared by the Thakur-style and RTLLM suites.

A problem carries three prompt levels (the paper's low/middle/high prompt
detail), a reference implementation and a *self-checking* testbench that
prints ``PASS``/``FAIL`` vectors and ends with ``$finish``.  Difficulties
are evenly spaced within a tier so the behavioural models' solve rates
aggregate to the paper's success percentages (see
:mod:`repro.llm.behavioral`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

PROMPT_LEVELS = ("low", "middle", "high")


@dataclass(frozen=True)
class Problem:
    """One benchmark entry."""

    name: str
    suite: str                    # 'thakur' | 'rtllm'
    tier: str                     # basic | intermediate | advanced | rtllm
    difficulty: float             # 0..1, evenly spaced within the tier
    prompts: dict[str, str] = field(default_factory=dict)
    reference: str = ""
    testbench: str = ""

    def prompt(self, level: str = "middle") -> str:
        if level not in PROMPT_LEVELS:
            raise KeyError(f"unknown prompt level '{level}'")
        return self.prompts.get(level) or self.prompts.get("middle", "")


def spaced_difficulties(count: int) -> list[float]:
    """Evenly spaced difficulties in (0, 1): (i + 0.5) / count."""
    return [(i + 0.5) / count for i in range(count)]


def attach_difficulties(problems: list[Problem]) -> list[Problem]:
    """Re-create problems with evenly spaced difficulties per tier."""
    by_tier: dict[str, list[Problem]] = {}
    for problem in problems:
        by_tier.setdefault(problem.tier, []).append(problem)
    out: list[Problem] = []
    for tier_problems in by_tier.values():
        difficulties = spaced_difficulties(len(tier_problems))
        for problem, difficulty in zip(tier_problems, difficulties):
            out.append(Problem(
                name=problem.name, suite=problem.suite, tier=problem.tier,
                difficulty=difficulty, prompts=problem.prompts,
                reference=problem.reference, testbench=problem.testbench))
    order = {id(p): i for i, p in enumerate(problems)}
    names = {p.name: p for p in out}
    return [names[p.name] for p in problems]
