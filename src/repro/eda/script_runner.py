"""Execute and judge generated SiliconCompiler scripts (Table 4's referee).

``run_script`` answers the two questions Table 4 asks about a candidate
script:

* **syntax** — is it valid Python at all? (``compile()``)
* **function** — does it execute against the mini SiliconCompiler without
  errors, run the flow to completion, and satisfy the task's expectation?

The script executes in a restricted namespace with a shimmed
``siliconcompiler`` module so ``from siliconcompiler import Chip`` works.
"""

from __future__ import annotations

import builtins
import sys
import types
from collections.abc import Callable
from dataclasses import dataclass, field

from .chip import Chip, SCError

#: A task expectation inspects the executed Chip and passes/fails it.
Expectation = Callable[[Chip], bool]


@dataclass
class ScriptCheck:
    """Verdict for one candidate script."""

    syntax_ok: bool
    function_ok: bool
    error: str | None = None
    chips: list[Chip] = field(default_factory=list)

    @property
    def summary(self) -> str:
        if not self.syntax_ok:
            return f"syntax error: {self.error}"
        if not self.function_ok:
            return f"functional error: {self.error}"
        return "ok"


_ALLOWED_BUILTINS = {
    "abs", "bool", "dict", "enumerate", "float", "int", "len", "list",
    "max", "min", "print", "range", "round", "set", "sorted", "str",
    "sum", "tuple", "zip", "True", "False", "None", "__import__",
    "isinstance", "getattr", "setattr", "hasattr", "repr",
}


def _restricted_builtins() -> dict:
    return {name: getattr(builtins, name)
            for name in _ALLOWED_BUILTINS if hasattr(builtins, name)}


def run_script(script: str,
               expectation: Expectation | None = None,
               extra_sources: dict[str, str] | None = None) -> ScriptCheck:
    """Compile + execute a candidate script and judge the outcome."""
    try:
        code = compile(script, "<candidate>", "exec")
    except SyntaxError as exc:
        return ScriptCheck(syntax_ok=False, function_ok=False,
                           error=f"line {exc.lineno}: {exc.msg}")

    chips: list[Chip] = []

    def tracked_chip(design: str) -> Chip:
        chip = Chip(design)
        if extra_sources:
            chip.source_library.update(extra_sources)
        chips.append(chip)
        return chip

    shim = types.ModuleType("siliconcompiler")
    shim.Chip = tracked_chip
    namespace = {
        "__builtins__": _restricted_builtins(),
        "Chip": tracked_chip,
        "siliconcompiler": shim,
    }
    previous = sys.modules.get("siliconcompiler")
    sys.modules["siliconcompiler"] = shim
    try:
        exec(code, namespace)           # noqa: S102 — sandboxed namespace
    except SCError as exc:
        return ScriptCheck(syntax_ok=True, function_ok=False,
                           error=str(exc), chips=chips)
    except Exception as exc:            # genuine script bug
        return ScriptCheck(syntax_ok=True, function_ok=False,
                           error=f"{type(exc).__name__}: {exc}",
                           chips=chips)
    finally:
        if previous is not None:
            sys.modules["siliconcompiler"] = previous
        else:
            sys.modules.pop("siliconcompiler", None)

    if not chips:
        return ScriptCheck(syntax_ok=True, function_ok=False,
                           error="script never created a Chip",
                           chips=chips)
    ran = [chip for chip in chips if chip.result is not None]
    if not ran:
        return ScriptCheck(syntax_ok=True, function_ok=False,
                           error="script never ran the flow", chips=chips)
    failed = [chip for chip in ran if not chip.result.ok]
    if failed:
        bad = failed[0].result
        stage_errors = [s.error for s in bad.stages if not s.ok]
        return ScriptCheck(syntax_ok=True, function_ok=False,
                           error=f"flow failed: {stage_errors[0]}",
                           chips=chips)
    if expectation is not None:
        try:
            if not expectation(ran[0]):
                return ScriptCheck(syntax_ok=True, function_ok=False,
                                   error="task expectation not met",
                                   chips=chips)
        except Exception as exc:
            return ScriptCheck(syntax_ok=True, function_ok=False,
                               error=f"expectation error: {exc}",
                               chips=chips)
    return ScriptCheck(syntax_ok=True, function_ok=True, chips=chips)
