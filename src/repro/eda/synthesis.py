"""Logic synthesis: Verilog AST → gate-level netlist (yosys stand-in).

Bit-blasts a synthesisable subset of the RTL our corpus and benchmark
scripts use: continuous assigns, combinational ``always @(*)`` and clocked
``always @(posedge …)`` processes with if/case/non-blocking assignments.
Word-level operators are decomposed into a standard-cell netlist (INV /
AND2 / OR2 / XOR2 / MUX2 / DFF …) whose area and timing the flow stages
then analyse.

Unsupported constructs raise :class:`SynthesisError` — the same behaviour
an RTL-to-GDS flow shows when handed non-synthesisable code.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..sim.elaborate import ElaborationError, const_eval
from ..sim.values import from_literal
from ..verilog import VerilogError, ast, parse
from .pdk import PDK, SKY130

ZERO = "$zero"
ONE = "$one"


class SynthesisError(Exception):
    """Raised when the design uses constructs synthesis does not support."""


@dataclass
class Gate:
    kind: str
    inputs: list[str]
    output: str


@dataclass
class Netlist:
    """Flat gate-level netlist with bit-granular ports."""

    module: str
    inputs: list[str] = field(default_factory=list)
    outputs: list[str] = field(default_factory=list)
    gates: list[Gate] = field(default_factory=list)
    clock: str | None = None

    @property
    def flops(self) -> list[Gate]:
        return [g for g in self.gates if g.kind == "DFF"]

    @property
    def combinational(self) -> list[Gate]:
        return [g for g in self.gates if g.kind != "DFF"]

    def cell_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for gate in self.gates:
            counts[gate.kind] = counts.get(gate.kind, 0) + 1
        return counts

    def area_um2(self, pdk: PDK = SKY130) -> float:
        return sum(pdk.cell(g.kind).area_um2 for g in self.gates)

    def longest_path_ns(self, pdk: PDK = SKY130) -> float:
        """Topological longest path through gate delays (wire-free STA)."""
        arrival: dict[str, float] = {net: 0.0 for net in self.inputs}
        arrival[ZERO] = arrival[ONE] = 0.0
        # Flop outputs are path starts.
        for flop in self.flops:
            arrival[flop.output] = pdk.cell("DFF").delay_ns
        remaining = list(self.combinational)
        worst = 0.0
        for _ in range(len(remaining) + 1):
            progressed = False
            still: list[Gate] = []
            for gate in remaining:
                if all(net in arrival for net in gate.inputs):
                    time = (max((arrival[n] for n in gate.inputs),
                                default=0.0)
                            + pdk.cell(gate.kind).delay_ns)
                    arrival[gate.output] = time
                    worst = max(worst, time)
                    progressed = True
                else:
                    still.append(gate)
            remaining = still
            if not remaining:
                break
            if not progressed:
                raise SynthesisError("combinational loop in netlist")
        # Paths ending at flop D inputs contribute setup paths too.
        for flop in self.flops:
            d_net = flop.inputs[0]
            worst = max(worst, arrival.get(d_net, 0.0)
                        + pdk.cell("DFF").delay_ns)
        return worst


@dataclass
class SynthResult:
    netlist: Netlist
    area_um2: float
    cell_counts: dict[str, int]
    critical_path_ns: float

    @property
    def num_cells(self) -> int:
        return sum(self.cell_counts.values())

    @property
    def fmax_mhz(self) -> float:
        if self.critical_path_ns <= 0:
            return 10_000.0
        return 1000.0 / self.critical_path_ns


class Synthesizer:
    """Bit-blasting synthesizer for one module."""

    def __init__(self, module: ast.Module, pdk: PDK = SKY130):
        self.module = module
        self.pdk = pdk
        self.netlist = Netlist(module=module.name)
        self.params = self._eval_params()
        self.signals: dict[str, list[str]] = {}   # name -> bit nets (LSB..)
        self.widths: dict[str, int] = {}
        self.kinds: dict[str, str] = {}
        self._net_id = 0

    # -- helpers -----------------------------------------------------------

    def _fresh(self) -> str:
        self._net_id += 1
        return f"n{self._net_id}"

    def _gate(self, kind: str, inputs: list[str]) -> str:
        out = self._fresh()
        self.netlist.gates.append(Gate(kind=kind, inputs=inputs,
                                       output=out))
        return out

    def _eval_params(self) -> dict:
        params = {}
        decls = list(self.module.params) + \
            self.module.items_of_type(ast.ParamDecl)
        for decl in decls:
            for assign in decl.assignments:
                params[assign.name] = const_eval(assign.init, params)
        return params

    def _range_width(self, rng: ast.Range | None) -> int:
        if rng is None:
            return 1
        msb = const_eval(rng.msb, self.params).to_int()
        lsb = const_eval(rng.lsb, self.params).to_int()
        return abs(msb - lsb) + 1

    # -- elaboration of signals ------------------------------------------

    def _declare(self) -> None:
        directions: dict[str, str] = {}
        port_widths: dict[str, int] = {}

        def note_port(decl: ast.PortDecl) -> None:
            for name in decl.names:
                directions[name] = decl.direction
                port_widths[name] = self._range_width(decl.range)
                if decl.net_kind:
                    self.kinds[name] = decl.net_kind

        for port in self.module.ports:
            if port.decl is not None:
                note_port(port.decl)
        for item in self.module.items:
            if isinstance(item, ast.PortDecl):
                note_port(item)
            elif isinstance(item, ast.Decl):
                if item.kind == "genvar":
                    continue
                width = self._range_width(item.range)
                if item.kind == "integer":
                    width = 32
                for decl in item.declarators:
                    if decl.array is not None:
                        raise SynthesisError(
                            f"memory '{decl.name}' is not synthesisable "
                            f"here")
                    self.widths[decl.name] = width
                    self.kinds.setdefault(decl.name, item.kind)
        for name, width in port_widths.items():
            self.widths[name] = width
        for port in self.module.ports:
            if port.name not in self.widths:
                self.widths[port.name] = 1
                directions.setdefault(port.name, "input")
        # Allocate bit nets.
        for name, width in self.widths.items():
            bits = [f"{name}[{i}]" for i in range(width)]
            self.signals[name] = bits
            if directions.get(name) == "input":
                self.netlist.inputs.extend(bits)
            elif directions.get(name) == "output":
                self.netlist.outputs.extend(bits)
        self.directions = directions

    # -- expression bit-blasting -------------------------------------------

    def bits(self, expr: ast.Expr, width: int | None = None) -> list[str]:
        nets = self._bits(expr)
        if width is None:
            return nets
        if len(nets) >= width:
            return nets[:width]
        return nets + [ZERO] * (width - len(nets))

    def _bits(self, expr: ast.Expr) -> list[str]:
        if isinstance(expr, ast.Identifier):
            if expr.name in self.signals:
                return list(self.signals[expr.name])
            if expr.name in self.params:
                value = self.params[expr.name]
                return [ONE if (value.val >> i) & 1 else ZERO
                        for i in range(max(value.width, 1))]
            raise SynthesisError(f"unknown identifier '{expr.name}'")
        if isinstance(expr, ast.Number):
            value = from_literal(expr.text)
            return [ONE if (value.val >> i) & 1 else ZERO
                    for i in range(max(value.width, 1))]
        if isinstance(expr, ast.Unary):
            return self._unary_bits(expr)
        if isinstance(expr, ast.Binary):
            return self._binary_bits(expr)
        if isinstance(expr, ast.Ternary):
            cond = self._reduce_or(self._bits(expr.cond))
            then_bits = self._bits(expr.if_true)
            else_bits = self._bits(expr.if_false)
            width = max(len(then_bits), len(else_bits))
            then_bits += [ZERO] * (width - len(then_bits))
            else_bits += [ZERO] * (width - len(else_bits))
            return [self._gate("MUX2", [else_bits[i], then_bits[i], cond])
                    for i in range(width)]
        if isinstance(expr, ast.Concat):
            out: list[str] = []
            for part in reversed(expr.parts):     # LSB-first storage
                out.extend(self._bits(part))
            return out
        if isinstance(expr, ast.Repl):
            count = const_eval(expr.count, self.params).to_int()
            chunk: list[str] = []
            for part in reversed(expr.parts):
                chunk.extend(self._bits(part))
            return chunk * count
        if isinstance(expr, ast.Index):
            return [self._select_bit(expr)]
        if isinstance(expr, ast.PartSelect):
            return self._part_select_bits(expr)
        raise SynthesisError(
            f"cannot synthesize expression {type(expr).__name__}")

    def _signal_offset(self, name: str, index: int) -> int:
        # Declared ranges are normalised at declaration; assume [msb:0]
        # style (our corpus and benchmark designs use descending ranges).
        return index

    def _select_bit(self, expr: ast.Index) -> str:
        if not isinstance(expr.base, ast.Identifier):
            raise SynthesisError("complex bit-select base")
        base_bits = self._bits(expr.base)
        try:
            index = const_eval(expr.index, self.params).to_int()
        except Exception:
            # variable index → mux tree
            sel_bits = self._bits(expr.index)
            return self._mux_tree(base_bits, sel_bits)
        offset = self._signal_offset(expr.base.name, index)
        if 0 <= offset < len(base_bits):
            return base_bits[offset]
        return ZERO

    def _mux_tree(self, data: list[str], select: list[str]) -> str:
        current = list(data)
        for level, sel in enumerate(select):
            nxt = []
            for i in range(0, len(current), 2):
                a = current[i]
                b = current[i + 1] if i + 1 < len(current) else ZERO
                nxt.append(self._gate("MUX2", [a, b, sel]))
            current = nxt or [ZERO]
            if len(current) == 1:
                break
        return current[0]

    def _part_select_bits(self, expr: ast.PartSelect) -> list[str]:
        if not isinstance(expr.base, ast.Identifier):
            raise SynthesisError("complex part-select base")
        base_bits = self._bits(expr.base)
        if expr.mode == ":":
            msb = const_eval(expr.msb, self.params).to_int()
            lsb = const_eval(expr.lsb, self.params).to_int()
        else:
            start = const_eval(expr.msb, self.params).to_int()
            width = const_eval(expr.lsb, self.params).to_int()
            if expr.mode == "+:":
                lsb, msb = start, start + width - 1
            else:
                msb, lsb = start, start - width + 1
        lo, hi = min(msb, lsb), max(msb, lsb)
        out = []
        for i in range(lo, hi + 1):
            out.append(base_bits[i] if 0 <= i < len(base_bits) else ZERO)
        return out

    def _unary_bits(self, expr: ast.Unary) -> list[str]:
        operand = self._bits(expr.operand)
        if expr.op == "~":
            return [self._inv(bit) for bit in operand]
        if expr.op == "!":
            return [self._inv(self._reduce_or(operand))]
        if expr.op == "-":
            inverted = [self._inv(bit) for bit in operand]
            total, _ = self._adder(
                inverted, [ZERO] * len(operand), ONE)
            return total
        if expr.op == "+":
            return operand
        if expr.op in ("&", "~&"):
            out = self._tree("AND2", operand)
            return [self._inv(out) if expr.op == "~&" else out]
        if expr.op in ("|", "~|"):
            out = self._reduce_or(operand)
            return [self._inv(out) if expr.op == "~|" else out]
        if expr.op in ("^", "~^", "^~"):
            out = self._tree("XOR2", operand)
            return [self._inv(out) if expr.op != "^" else out]
        raise SynthesisError(f"unsupported unary operator '{expr.op}'")

    def _binary_bits(self, expr: ast.Binary) -> list[str]:
        op = expr.op
        if op in ("&", "|", "^", "~^", "^~"):
            left = self._bits(expr.left)
            right = self._bits(expr.right)
            width = max(len(left), len(right))
            left += [ZERO] * (width - len(left))
            right += [ZERO] * (width - len(right))
            kind = {"&": "AND2", "|": "OR2", "^": "XOR2",
                    "~^": "XNOR2", "^~": "XNOR2"}[op]
            return [self._gate(kind, [left[i], right[i]])
                    for i in range(width)]
        if op in ("&&", "||"):
            a = self._reduce_or(self._bits(expr.left))
            b = self._reduce_or(self._bits(expr.right))
            return [self._gate("AND2" if op == "&&" else "OR2", [a, b])]
        if op in ("+", "-"):
            left = self._bits(expr.left)
            right = self._bits(expr.right)
            width = max(len(left), len(right))
            left += [ZERO] * (width - len(left))
            right += [ZERO] * (width - len(right))
            if op == "-":
                right = [self._inv(bit) for bit in right]
                total, _ = self._adder(left, right, ONE)
            else:
                total, _ = self._adder(left, right, ZERO)
            return total
        if op == "*":
            return self._multiplier(expr)
        if op in ("==", "!="):
            left = self._bits(expr.left)
            right = self._bits(expr.right)
            width = max(len(left), len(right))
            left += [ZERO] * (width - len(left))
            right += [ZERO] * (width - len(right))
            eq_bits = [self._gate("XNOR2", [left[i], right[i]])
                       for i in range(width)]
            out = self._tree("AND2", eq_bits)
            return [self._inv(out) if op == "!=" else out]
        if op in ("<", "<=", ">", ">="):
            return [self._compare(expr)]
        if op in ("<<", ">>", "<<<", ">>>"):
            return self._shift(expr)
        raise SynthesisError(f"unsupported binary operator '{op}'")

    def _compare(self, expr: ast.Binary) -> str:
        left = self._bits(expr.left)
        right = self._bits(expr.right)
        width = max(len(left), len(right))
        left += [ZERO] * (width - len(left))
        right += [ZERO] * (width - len(right))
        # a - b: carry out == 1  ⟺  a >= b (unsigned)
        inverted = [self._inv(bit) for bit in right]
        _, carry = self._adder(left, inverted, ONE)
        ge = carry
        if expr.op == ">=":
            return ge
        if expr.op == "<":
            return self._inv(ge)
        # strict greater / less-equal need equality too
        eq_bits = [self._gate("XNOR2", [left[i], right[i]])
                   for i in range(width)]
        eq = self._tree("AND2", eq_bits)
        if expr.op == ">":
            return self._gate("AND2", [ge, self._inv(eq)])
        return self._gate("OR2", [self._inv(ge), eq])   # <=

    def _shift(self, expr: ast.Binary) -> list[str]:
        left = self._bits(expr.left)
        width = len(left)
        fill = left[-1] if expr.op == ">>>" else ZERO
        try:
            amount = const_eval(expr.right, self.params).to_int()
        except Exception:
            return self._barrel_shift(expr.op, left, fill,
                                      self._bits(expr.right))
        if expr.op in ("<<", "<<<"):
            return ([ZERO] * min(amount, width)
                    + left)[:width]
        shifted = left[amount:]
        return shifted + [fill] * (width - len(shifted))

    def _barrel_shift(self, op: str, data: list[str], fill: str,
                      amount_bits: list[str]) -> list[str]:
        """Variable shift as a logarithmic barrel of MUX2 layers."""
        width = len(data)
        stages = max((width - 1).bit_length(), 1)
        current = list(data)
        for k in range(min(stages, len(amount_bits))):
            select = amount_bits[k]
            step = 1 << k
            if op in ("<<", "<<<"):
                shifted = ([ZERO] * min(step, width)
                           + current[:max(width - step, 0)])[:width]
            else:
                shifted = (current[step:]
                           + [fill] * min(step, width))[:width]
            current = [self._gate("MUX2",
                                  [current[i], shifted[i], select])
                       for i in range(width)]
        # Amount bits beyond the barrel range shift everything out.
        extra = amount_bits[stages:]
        if extra:
            any_high = self._tree("OR2", list(extra))
            overflow = fill if op == ">>>" else ZERO
            current = [self._gate("MUX2",
                                  [current[i], overflow, any_high])
                       for i in range(width)]
        return current

    def _multiplier(self, expr: ast.Binary) -> list[str]:
        left = self._bits(expr.left)
        right = self._bits(expr.right)
        width = max(len(left), len(right))
        if width > 16:
            raise SynthesisError("multiplier wider than 16 bits")
        left += [ZERO] * (width - len(left))
        right += [ZERO] * (width - len(right))
        acc = [ZERO] * width
        for i, select in enumerate(right):
            partial = [ZERO] * i
            partial += [self._gate("AND2", [bit, select])
                        for bit in left[:width - i]]
            acc, _ = self._adder(acc, partial[:width], ZERO)
        return acc

    # -- gate primitives ---------------------------------------------------

    def _inv(self, net: str) -> str:
        if net == ZERO:
            return ONE
        if net == ONE:
            return ZERO
        return self._gate("INV", [net])

    def _tree(self, kind: str, nets: list[str]) -> str:
        if not nets:
            return ZERO
        current = list(nets)
        while len(current) > 1:
            nxt = []
            for i in range(0, len(current) - 1, 2):
                nxt.append(self._gate(kind, [current[i], current[i + 1]]))
            if len(current) % 2:
                nxt.append(current[-1])
            current = nxt
        return current[0]

    def _reduce_or(self, nets: list[str]) -> str:
        return self._tree("OR2", nets)

    def _adder(self, a: list[str], b: list[str],
               cin: str) -> tuple[list[str], str]:
        out = []
        carry = cin
        for bit_a, bit_b in zip(a, b):
            axb = self._gate("XOR2", [bit_a, bit_b])
            out.append(self._gate("XOR2", [axb, carry]))
            gen = self._gate("AND2", [bit_a, bit_b])
            prop = self._gate("AND2", [axb, carry])
            carry = self._gate("OR2", [gen, prop])
        return out, carry

    # -- statement conversion (always blocks) ------------------------------

    def _stmt_updates(self, stmt: ast.Stmt | None,
                      env: dict[str, list[str]]) -> dict[str, list[str]]:
        """Functional update map target → next-value bits."""
        if stmt is None or isinstance(stmt, ast.NullStmt):
            return env
        if isinstance(stmt, ast.Block):
            for child in stmt.stmts:
                if isinstance(child, ast.Stmt):
                    env = self._stmt_updates(child, env)
            return env
        if isinstance(stmt, (ast.NonBlockingAssign, ast.BlockingAssign)):
            return self._assign_update(stmt.lhs, stmt.rhs, env)
        if isinstance(stmt, ast.IfStmt):
            cond = self._reduce_or(self.bits(stmt.cond))
            then_env = self._stmt_updates(stmt.then_stmt, dict(env))
            else_env = self._stmt_updates(stmt.else_stmt, dict(env)) \
                if stmt.else_stmt else env
            return self._merge_env(cond, then_env, else_env)
        if isinstance(stmt, ast.CaseStmt):
            default_env = env
            branches: list[tuple[str, dict[str, list[str]]]] = []
            for item in stmt.items:
                if not item.exprs:
                    default_env = self._stmt_updates(item.stmt, dict(env))
                    continue
                conditions = []
                for label in item.exprs:
                    eq = ast.Binary(op="==", left=stmt.expr, right=label)
                    conditions.append(self._reduce_or(self.bits(eq)))
                cond = self._tree("OR2", conditions)
                branches.append(
                    (cond, self._stmt_updates(item.stmt, dict(env))))
            merged = default_env
            for cond, branch_env in reversed(branches):
                merged = self._merge_env(cond, branch_env, merged)
            return merged
        raise SynthesisError(
            f"cannot synthesize statement {type(stmt).__name__}")

    def _assign_update(self, lhs: ast.Expr, rhs: ast.Expr,
                       env: dict[str, list[str]]) -> dict[str, list[str]]:
        env = dict(env)
        if isinstance(lhs, ast.Identifier):
            width = self.widths.get(lhs.name)
            if width is None:
                raise SynthesisError(f"unknown target '{lhs.name}'")
            env[lhs.name] = self.bits(rhs, width)
            return env
        if isinstance(lhs, ast.Concat):
            total = 0
            part_widths = []
            for part in lhs.parts:
                if not isinstance(part, ast.Identifier):
                    raise SynthesisError("complex concat lvalue")
                part_widths.append(self.widths[part.name])
                total += part_widths[-1]
            rhs_bits = self.bits(rhs, total)
            offset = total
            for part, width in zip(lhs.parts, part_widths):
                offset -= width
                env[part.name] = rhs_bits[offset:offset + width]  # type: ignore[union-attr]
            return env
        if isinstance(lhs, (ast.Index, ast.PartSelect)) and \
                isinstance(lhs.base, ast.Identifier):
            name = lhs.base.name
            current = env.get(name, list(self.signals[name]))
            current = list(current)
            if isinstance(lhs, ast.Index):
                index = const_eval(lhs.index, self.params).to_int()
                current[index] = self.bits(rhs, 1)[0]
            else:
                msb = const_eval(lhs.msb, self.params).to_int()
                lsb = const_eval(lhs.lsb, self.params).to_int()
                lo, hi = min(msb, lsb), max(msb, lsb)
                new_bits = self.bits(rhs, hi - lo + 1)
                current[lo:hi + 1] = new_bits
            env[name] = current
            return env
        raise SynthesisError("unsupported assignment target")

    def _merge_env(self, cond: str, then_env: dict[str, list[str]],
                   else_env: dict[str, list[str]]) -> dict[str, list[str]]:
        merged: dict[str, list[str]] = {}
        for name in set(then_env) | set(else_env):
            then_bits = then_env.get(name, list(self.signals[name]))
            else_bits = else_env.get(name, list(self.signals[name]))
            if then_bits == else_bits:
                merged[name] = then_bits
            else:
                merged[name] = [
                    self._gate("MUX2", [else_bits[i], then_bits[i], cond])
                    for i in range(len(then_bits))]
        return merged

    # -- top level ------------------------------------------------------

    def run(self) -> Netlist:
        self._declare()
        driven: dict[str, list[str]] = {}
        for item in self.module.items:
            if isinstance(item, ast.ContinuousAssign):
                for lhs, rhs in item.assignments:
                    driven.update(self._assign_update(lhs, rhs, {}))
            elif isinstance(item, ast.Always):
                self._synthesize_always(item, driven)
            elif isinstance(item, ast.Initial):
                continue   # simulation-only
            elif isinstance(item, ast.Instantiation):
                raise SynthesisError(
                    "hierarchical synthesis not supported; flatten first")
        # Rebind driven signals: replace placeholder nets with driver nets.
        self._rebind(driven)
        return self.netlist

    def _synthesize_always(self, item: ast.Always,
                           driven: dict[str, list[str]]) -> None:
        sens = item.senslist
        clock = None
        if sens is not None and not sens.is_star:
            for sens_item in sens.items:
                if sens_item.edge == "posedge" and \
                        isinstance(sens_item.signal, ast.Identifier):
                    name = sens_item.signal.name
                    if "clk" in name.lower() or clock is None:
                        clock = name
        if clock is not None:
            self.netlist.clock = self.netlist.clock or clock
            env = self._stmt_updates(item.body, {})
            clock_net = self.signals[clock][0]
            for target, next_bits in env.items():
                q_bits = []
                for bit in next_bits:
                    q_bits.append(self._gate_dff(bit, clock_net))
                driven[target] = q_bits
        else:
            env = self._stmt_updates(item.body, {})
            driven.update(env)

    def _gate_dff(self, d_net: str, clock_net: str) -> str:
        out = self._fresh()
        self.netlist.gates.append(Gate(kind="DFF",
                                       inputs=[d_net, clock_net],
                                       output=out))
        return out

    def _rebind(self, driven: dict[str, list[str]]) -> None:
        """Replace references to driven signal bits with the driver nets."""
        mapping: dict[str, str] = {}
        for name, bits in driven.items():
            for i, net in enumerate(bits):
                placeholder = f"{name}[{i}]"
                if net != placeholder:
                    mapping[placeholder] = net
        # Resolve chains (a -> b -> c).
        def resolve(net: str) -> str:
            seen = set()
            while net in mapping and net not in seen:
                seen.add(net)
                net = mapping[net]
            return net
        for gate in self.netlist.gates:
            gate.inputs = [resolve(net) for net in gate.inputs]
        # Outputs: tie output bit names to their drivers via buffers.
        new_outputs = []
        for out_bit in self.netlist.outputs:
            driver = resolve(out_bit)
            if driver != out_bit:
                self.netlist.gates.append(Gate(kind="BUF",
                                               inputs=[driver],
                                               output=out_bit))
            new_outputs.append(out_bit)
        self.netlist.outputs = new_outputs


def synthesize(source_text: str, top: str | None = None,
               pdk: PDK = SKY130) -> SynthResult:
    """Synthesize one module from source text to a gate-level netlist."""
    try:
        source = parse(source_text)
    except VerilogError as exc:
        raise SynthesisError(f"parse failed: {exc}") from exc
    if not source.modules:
        raise SynthesisError("no modules in source")
    module = source.modules[0]
    if top is not None:
        module = source.module(top)
    netlist = Synthesizer(module, pdk).run()
    return SynthResult(netlist=netlist,
                       area_um2=netlist.area_um2(pdk),
                       cell_counts=netlist.cell_counts(),
                       critical_path_ns=netlist.longest_path_ns(pdk))
