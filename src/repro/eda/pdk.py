"""Process design kit model (SkyWater 130nm stand-in).

Cell areas/delays are representative of the sky130_fd_sc_hd library's
order of magnitude; they feed the synthesis area report, the static
timing analysis and the power estimate in the PPA report.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Cell:
    """One standard cell."""

    name: str
    area_um2: float
    delay_ns: float          # nominal propagation delay
    leakage_nw: float
    dynamic_pj: float        # energy per toggle (pJ)
    inputs: int


@dataclass(frozen=True)
class PDK:
    """A process design kit: cell library + routing constants."""

    name: str
    cells: dict[str, Cell]
    site_width_um: float
    site_height_um: float
    wire_delay_ns_per_um: float
    wire_cap_ff_per_um: float
    metal_layers: int

    def cell(self, kind: str) -> Cell:
        try:
            return self.cells[kind]
        except KeyError:
            raise KeyError(f"PDK {self.name} has no cell '{kind}'") \
                from None


def _sky130_cells() -> dict[str, Cell]:
    rows = [
        # name      area   delay  leak  dyn  ins
        ("BUF",     3.75,  0.12,  1.0,  2.0, 1),
        ("INV",     2.50,  0.07,  0.8,  1.5, 1),
        ("AND2",    5.00,  0.14,  1.2,  2.5, 2),
        ("OR2",     5.00,  0.15,  1.2,  2.5, 2),
        ("NAND2",   3.75,  0.09,  1.0,  2.0, 2),
        ("NOR2",    3.75,  0.11,  1.0,  2.0, 2),
        ("XOR2",    8.75,  0.20,  1.8,  3.5, 2),
        ("XNOR2",   8.75,  0.21,  1.8,  3.5, 2),
        ("MUX2",   10.00,  0.18,  2.0,  3.8, 3),
        ("DFF",    20.00,  0.30,  4.5,  8.0, 2),
        ("TIE0",    1.25,  0.00,  0.2,  0.0, 0),
        ("TIE1",    1.25,  0.00,  0.2,  0.0, 0),
    ]
    return {name: Cell(name, area, delay, leak, dyn, ins)
            for name, area, delay, leak, dyn, ins in rows}


SKY130 = PDK(
    name="skywater130",
    cells=_sky130_cells(),
    site_width_um=0.46,
    site_height_um=2.72,
    wire_delay_ns_per_um=0.0002,
    wire_cap_ff_per_um=0.2,
    metal_layers=5,
)

#: Targets the mini SiliconCompiler can load.
TARGETS = {
    "skywater130_demo": SKY130,
    "asap7_demo": PDK(
        name="asap7",
        cells={name: Cell(cell.name, cell.area_um2 * 0.12,
                          cell.delay_ns * 0.4, cell.leakage_nw * 0.5,
                          cell.dynamic_pj * 0.3, cell.inputs)
               for name, cell in _sky130_cells().items()},
        site_width_um=0.054,
        site_height_um=0.27,
        wire_delay_ns_per_um=0.0001,
        wire_cap_ff_per_um=0.15,
        metal_layers=9,
    ),
}
