"""Mini SiliconCompiler: the ``Chip`` object the EDA scripts drive.

A faithful miniature of the SiliconCompiler Python API surface the paper's
script dataset exercises: schema ``set``/``get``/``add`` with validated
keypaths, ``input``/``clock``/``load_target``/``run``/``summary``.  The
backend is :class:`repro.eda.flow.Flow` over the sky130-like PDK —
mirroring the paper's "SiliconCompiler operates on openlane + SkyWater
130nm".

Unknown keypaths and unknown methods raise immediately: that is what makes
semantically-wrong generated scripts *fail honestly* in the Table-4
evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from .flow import Flow, FlowConstraints, FlowResult
from .pdk import TARGETS

#: Schema keypaths the mini SiliconCompiler accepts (a practical subset of
#: the real tool's schema).
_SCHEMA_KEYS = {
    ("design",),
    ("input", "verilog"),
    ("output", "gds"),
    ("option", "frontend"),
    ("option", "quiet"),
    ("option", "relax"),
    ("option", "jobname"),
    ("option", "target"),
    ("clock", "pin"),
    ("clock", "period"),
    ("asic", "diearea"),
    ("asic", "corearea"),
    ("constraint", "outline"),
    ("constraint", "coremargin"),
    ("constraint", "density"),
    ("constraint", "aspectratio"),
}


class SCError(Exception):
    """SiliconCompiler schema/usage error."""


@dataclass
class Chip:
    """Design container + flow driver (mini ``siliconcompiler.Chip``)."""

    design: str
    _schema: dict[tuple[str, ...], Any] = field(default_factory=dict)
    _sources: list[str] = field(default_factory=list)
    _target: str | None = None
    _result: FlowResult | None = None
    #: filename → Verilog text; extended by the script runner.
    source_library: dict[str, str] = field(default_factory=dict)

    def __post_init__(self):
        if not isinstance(self.design, str) or not self.design:
            raise SCError("Chip() requires a design name")
        self._schema[("design",)] = self.design

    # -- schema ------------------------------------------------------------

    def _check_keypath(self, keypath: tuple[str, ...]) -> None:
        if keypath not in _SCHEMA_KEYS:
            raise SCError(f"invalid schema keypath {list(keypath)}")

    def set(self, *args: Any) -> None:
        """``chip.set('clock', 'period', 10)`` — last arg is the value."""
        if len(args) < 2:
            raise SCError("set() needs a keypath and a value")
        *keypath, value = args
        keypath = tuple(str(k) for k in keypath)
        self._check_keypath(keypath)
        self._schema[keypath] = value

    def get(self, *keypath: str, default: Any = None) -> Any:
        path = tuple(str(k) for k in keypath)
        self._check_keypath(path)
        return self._schema.get(path, default)

    def add(self, *args: Any) -> None:
        """Append to a list-valued parameter."""
        if len(args) < 2:
            raise SCError("add() needs a keypath and a value")
        *keypath, value = args
        keypath = tuple(str(k) for k in keypath)
        self._check_keypath(keypath)
        existing = self._schema.setdefault(keypath, [])
        if not isinstance(existing, list):
            existing = [existing]
        existing.append(value)
        self._schema[keypath] = existing

    # -- convenience API (matches real SiliconCompiler methods) ------------

    def input(self, filename: str) -> None:
        if not str(filename).endswith(".v"):
            raise SCError(f"unsupported input file '{filename}'")
        self._sources.append(str(filename))
        self.add("input", "verilog", str(filename))

    def output(self, filename: str) -> None:
        self.set("output", "gds", str(filename))

    def clock(self, pin: str, period: float | None = None, **kwargs: Any):
        if period is None:
            period = kwargs.get("period")
        if period is None:
            raise SCError("clock() requires a period")
        self.set("clock", "pin", str(pin))
        self.set("clock", "period", float(period))

    def load_target(self, name: str) -> None:
        if name not in TARGETS:
            raise SCError(f"unknown target '{name}'; available: "
                          f"{', '.join(sorted(TARGETS))}")
        self._target = name
        self.set("option", "target", name)

    # -- flow ------------------------------------------------------------

    def _resolve_sources(self) -> str:
        if not self._sources:
            raise SCError("no input sources; call chip.input() first")
        texts = []
        for filename in self._sources:
            if filename in self.source_library:
                texts.append(self.source_library[filename])
                continue
            from .reference_scripts import DESIGN_SOURCES
            if filename in DESIGN_SOURCES:
                texts.append(DESIGN_SOURCES[filename])
            else:
                raise SCError(f"input file '{filename}' not found")
        return "\n".join(texts)

    def _constraints(self) -> FlowConstraints:
        constraints = FlowConstraints()
        period = self._schema.get(("clock", "period"))
        if period is not None:
            constraints.clock_period_ns = float(period)
        pin = self._schema.get(("clock", "pin"))
        if pin is not None:
            constraints.clock_pin = str(pin)
        outline = self._schema.get(("asic", "diearea")) or \
            self._schema.get(("constraint", "outline"))
        if outline:
            (x0, y0), (x1, y1) = outline[0], outline[1]
            constraints.die_area = (float(x1) - float(x0),
                                    float(y1) - float(y0))
        margin = self._schema.get(("constraint", "coremargin"))
        if margin is not None:
            constraints.core_margin_um = float(margin)
        density = self._schema.get(("constraint", "density"))
        if density is not None:
            constraints.density_pct = float(density)
        aspect = self._schema.get(("constraint", "aspectratio"))
        if aspect is not None:
            constraints.aspect_ratio = float(aspect)
        return constraints

    def run(self) -> FlowResult:
        """Execute the RTL-to-GDS flow with the configured constraints."""
        if self._target is None:
            raise SCError("no target loaded; call chip.load_target()")
        source = self._resolve_sources()
        flow = Flow(pdk=TARGETS[self._target])
        self._result = flow.run(source, top=None,
                                constraints=self._constraints())
        return self._result

    @property
    def result(self) -> FlowResult | None:
        return self._result

    def summary(self) -> str:
        if self._result is None:
            raise SCError("summary() before run()")
        return self._result.summary()
