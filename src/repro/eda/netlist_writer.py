"""Emit a synthesized netlist as structural Verilog.

The emitted gate-level module uses only primitive continuous assigns and
clocked processes, so it parses and simulates with :mod:`repro.verilog` /
:mod:`repro.sim`.  This closes the loop for *logical equivalence
checking*: the RTL and its own synthesized netlist can be driven with the
same random vectors and compared output-for-output
(:func:`repro.eda.equivalence.check_equivalence`).
"""

from __future__ import annotations

import re

from .synthesis import Gate, Netlist

_GATE_EXPR = {
    "BUF": "{0}",
    "INV": "~{0}",
    "AND2": "{0} & {1}",
    "OR2": "{0} | {1}",
    "NAND2": "~({0} & {1})",
    "NOR2": "~({0} | {1})",
    "XOR2": "{0} ^ {1}",
    "XNOR2": "~({0} ^ {1})",
    "MUX2": "{2} ? {1} : {0}",
    "TIE0": "1'b0",
    "TIE1": "1'b1",
}

_NET_RE = re.compile(r"[^A-Za-z0-9_]")


def _net_name(net: str) -> str:
    """Map a netlist net ('count[1]', 'n42', '$zero') to a flat wire name."""
    if net == "$zero":
        return "1'b0"
    if net == "$one":
        return "1'b1"
    return "nl_" + _NET_RE.sub("_", net)


def netlist_to_verilog(netlist: Netlist,
                       module_name: str | None = None) -> str:
    """Structural Verilog for ``netlist`` with bit-level ports.

    Ports keep their original bracketed names flattened to legal
    identifiers (``count[1]`` → ``nl_count_1_``) so the equivalence
    checker can map RTL bits onto netlist ports mechanically.
    """
    name = module_name or f"{netlist.module}_gates"
    in_ports = [_net_name(n) for n in netlist.inputs]
    out_ports = [_net_name(n) for n in netlist.outputs]
    clock_port = None
    if netlist.clock is not None:
        clock_net = _net_name(f"{netlist.clock}[0]")
        if clock_net not in in_ports:
            clock_port = clock_net
    header_ports = in_ports + ([clock_port] if clock_port else []) \
        + out_ports
    lines = [f"module {name} ("]
    lines.extend(f"  input {p}," for p in in_ports)
    if clock_port:
        lines.append(f"  input {clock_port},")
    lines.extend(f"  output {p}," for p in out_ports)
    lines[-1] = lines[-1].rstrip(",")
    lines.append(");")

    declared = set(header_ports)
    flops: list[Gate] = []
    for gate in netlist.gates:
        out = _net_name(gate.output)
        if out in declared or out.startswith("1'b"):
            continue
        declared.add(out)
        if gate.kind == "DFF":
            lines.append(f"  reg {out};")
        else:
            lines.append(f"  wire {out};")
    for gate in netlist.gates:
        inputs = [_net_name(n) for n in gate.inputs]
        out = _net_name(gate.output)
        if gate.kind == "DFF":
            flops.append(gate)
            continue
        template = _GATE_EXPR.get(gate.kind)
        if template is None:
            raise ValueError(f"no structural template for {gate.kind}")
        lines.append(f"  assign {out} = {template.format(*inputs)};")
    for gate in flops:
        d_net = _net_name(gate.inputs[0])
        clk_net = _net_name(gate.inputs[1])
        out = _net_name(gate.output)
        lines.append(f"  always @(posedge {clk_net}) {out} <= {d_net};")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"
