"""Reference designs and the ~200-script SiliconCompiler corpus.

The paper feeds "around 200 examples of valid SiliconCompiler scripts" to
the describer LLM (Sec. 3.3).  This module generates that corpus: a
deterministic parameter sweep of valid script shapes over a catalog of
small synthesisable designs, plus the five benchmark reference scripts
(Basic / Layout / Clock Period / Core Area / Mixed) used by Table 4.
"""

from __future__ import annotations

import random

#: Synthesisable designs the scripts compile, keyed by input filename.
DESIGN_SOURCES: dict[str, str] = {
    "heartbeat.v": """module heartbeat (input clk, output reg out);
  reg [7:0] counter;
  always @(posedge clk) begin
    counter <= counter + 8'd1;
    out <= counter == 8'd0;
  end
endmodule
""",
    "counter.v": """module counter (input clk, input rst, input en,
                output reg [7:0] count);
  always @(posedge clk)
    if (rst) count <= 8'd0;
    else if (en) count <= count + 8'd1;
endmodule
""",
    "gcd_step.v": """module gcd_step (input [7:0] a, input [7:0] b,
                 output [7:0] na, output [7:0] nb);
  assign na = (a > b) ? a - b : a;
  assign nb = (b > a) ? b - a : b;
endmodule
""",
    "gray.v": """module gray (input clk, input rst, output [3:0] code);
  reg [3:0] bin;
  always @(posedge clk)
    if (rst) bin <= 4'd0;
    else bin <= bin + 4'd1;
  assign code = bin ^ (bin >> 1);
endmodule
""",
    "alu_slice.v": """module alu_slice (input [3:0] a, input [3:0] b,
                  input [1:0] op, output reg [3:0] y);
  always @(*)
    case (op)
      2'b00: y = a + b;
      2'b01: y = a - b;
      2'b10: y = a & b;
      default: y = a | b;
    endcase
endmodule
""",
    "shifter.v": """module shifter (input clk, input d, output reg [7:0] q);
  always @(posedge clk)
    q <= {q[6:0], d};
endmodule
""",
    "parity8.v": """module parity8 (input [7:0] data, output p);
  assign p = ^data;
endmodule
""",
    "pwm.v": """module pwm (input clk, input rst, input [3:0] duty,
            output out);
  reg [3:0] cnt;
  always @(posedge clk)
    if (rst) cnt <= 4'd0;
    else cnt <= cnt + 4'd1;
  assign out = cnt < duty;
endmodule
""",
}

_DESIGN_NAMES = {filename: filename[:-2] for filename in DESIGN_SOURCES}


def _script(design_file: str, *, clock: float | None = None,
            diearea: tuple[float, float] | None = None,
            coremargin: float | None = None,
            density: float | None = None,
            aspect: float | None = None,
            quiet: bool = False,
            jobname: str | None = None,
            target: str = "skywater130_demo") -> str:
    name = _DESIGN_NAMES[design_file]
    lines = ["from siliconcompiler import Chip",
             f"chip = Chip('{name}')",
             f"chip.input('{design_file}')"]
    if clock is not None:
        lines.append(f"chip.clock('clk', period={clock})")
    if diearea is not None:
        width, height = diearea
        lines.append(f"chip.set('asic', 'diearea', "
                     f"[(0, 0), ({width}, {height})])")
    if coremargin is not None:
        lines.append(f"chip.set('constraint', 'coremargin', {coremargin})")
    if density is not None:
        lines.append(f"chip.set('constraint', 'density', {density})")
    if aspect is not None:
        lines.append(f"chip.set('constraint', 'aspectratio', {aspect})")
    if quiet:
        lines.append("chip.set('option', 'quiet', True)")
    if jobname is not None:
        lines.append(f"chip.set('option', 'jobname', '{jobname}')")
    lines.append(f"chip.load_target('{target}')")
    lines.append("chip.run()")
    lines.append("chip.summary()")
    return "\n".join(lines) + "\n"


def reference_corpus(count: int = 200, seed: int = 0) -> list[str]:
    """``count`` distinct valid scripts (the paper's ~200 examples)."""
    rng = random.Random(seed)
    files = sorted(DESIGN_SOURCES)
    scripts: list[str] = []
    seen: set[str] = set()
    attempt = 0
    while len(scripts) < count and attempt < count * 20:
        attempt += 1
        design_file = files[attempt % len(files)]
        kwargs: dict = {}
        if rng.random() < 0.8:
            kwargs["clock"] = rng.choice([5, 8, 10, 12.5, 15, 20, 25, 40])
        if rng.random() < 0.3:
            side = rng.choice([60, 80, 100, 120, 150, 200])
            kwargs["diearea"] = (side, side)
        if rng.random() < 0.35:
            kwargs["coremargin"] = rng.choice([1, 2, 4, 5])
        if rng.random() < 0.35:
            kwargs["density"] = rng.choice([40, 50, 60, 70, 80])
        if rng.random() < 0.2:
            kwargs["aspect"] = rng.choice([0.5, 1.0, 1.5, 2.0])
        if rng.random() < 0.2:
            kwargs["quiet"] = True
        if rng.random() < 0.15:
            kwargs["jobname"] = f"job{rng.randrange(100)}"
        if rng.random() < 0.1:
            kwargs["target"] = "asap7_demo"
        script = _script(design_file, **kwargs)
        if script not in seen:
            seen.add(script)
            scripts.append(script)
    return scripts


#: Table-4 benchmark reference scripts, one per task level.
BENCHMARK_SCRIPTS: dict[str, str] = {
    "Basic": _script("heartbeat.v"),
    "Layout": _script("heartbeat.v", diearea=(100, 100)),
    "Clock Period": _script("heartbeat.v", clock=10),
    "Core Area": _script("heartbeat.v", diearea=(120, 120), coremargin=2),
    "Mixed": _script("counter.v", clock=12.5, diearea=(150, 150),
                     coremargin=2, density=60, quiet=True),
}
