"""RTL-to-GDS flow model (the OpenLane backend stand-in).

``Flow.run`` executes the classic stage sequence — import → synthesis →
floorplan → placement → CTS → routing → STA → power → export — over the
gate-level netlist produced by :mod:`repro.eda.synthesis`.  Each stage
emits metrics; a failing stage (lint error, core overflow, congestion,
negative slack) stops the flow exactly like a real backend.

The flow output is a :class:`PPAReport` plus a GDS-like placement dump —
what the paper's Fig. 4 labels "GDS II" and "PPA Report".
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..checker import check_source
from .pdk import PDK, SKY130
from .synthesis import SynthesisError, SynthResult, synthesize


@dataclass
class FlowConstraints:
    """User constraints gathered from the Chip schema."""

    clock_period_ns: float = 10.0
    clock_pin: str = "clk"
    die_area: tuple[float, float] | None = None   # (width, height) um
    core_margin_um: float = 1.0
    density_pct: float = 60.0
    aspect_ratio: float = 1.0


@dataclass
class StageResult:
    name: str
    ok: bool
    metrics: dict[str, float | int | str] = field(default_factory=dict)
    error: str | None = None


@dataclass
class PPAReport:
    """Power / performance / area summary."""

    cell_area_um2: float
    die_area_um2: float
    utilization_pct: float
    num_cells: int
    num_flops: int
    critical_path_ns: float
    fmax_mhz: float
    slack_ns: float
    power_mw: float
    wirelength_um: float

    def rows(self) -> list[tuple[str, str]]:
        return [
            ("cell area (um^2)", f"{self.cell_area_um2:.1f}"),
            ("die area (um^2)", f"{self.die_area_um2:.1f}"),
            ("utilization (%)", f"{self.utilization_pct:.1f}"),
            ("cells", str(self.num_cells)),
            ("registers", str(self.num_flops)),
            ("critical path (ns)", f"{self.critical_path_ns:.3f}"),
            ("fmax (MHz)", f"{self.fmax_mhz:.1f}"),
            ("setup slack (ns)", f"{self.slack_ns:.3f}"),
            ("power (mW)", f"{self.power_mw:.4f}"),
            ("wirelength (um)", f"{self.wirelength_um:.1f}"),
        ]


@dataclass
class FlowResult:
    design: str
    stages: list[StageResult] = field(default_factory=list)
    ppa: PPAReport | None = None
    gds: dict | None = None

    @property
    def ok(self) -> bool:
        return bool(self.stages) and all(stage.ok for stage in self.stages)

    def stage(self, name: str) -> StageResult:
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise KeyError(f"no stage '{name}'")

    def summary(self) -> str:
        lines = [f"SUMMARY: {self.design}",
                 "-" * 46]
        for stage in self.stages:
            status = "ok" if stage.ok else f"FAIL ({stage.error})"
            lines.append(f"{stage.name:<12} {status}")
        if self.ppa is not None:
            lines.append("-" * 46)
            for key, value in self.ppa.rows():
                lines.append(f"{key:<24} {value:>18}")
        return "\n".join(lines)


class Flow:
    """Run the full RTL-to-GDS pipeline for one design."""

    def __init__(self, pdk: PDK = SKY130):
        self.pdk = pdk

    def run(self, source_text: str, top: str | None,
            constraints: FlowConstraints) -> FlowResult:
        design = top or "design"
        result = FlowResult(design=design)

        # -- import ------------------------------------------------------
        lint = check_source(source_text, f"./{design}.v")
        if not lint.ok:
            result.stages.append(StageResult(
                name="import", ok=False, error=lint.first_error()))
            return result
        result.stages.append(StageResult(
            name="import", ok=True,
            metrics={"warnings": len(lint.warnings)}))

        # -- synthesis -----------------------------------------------------
        try:
            synth = synthesize(source_text, top=top, pdk=self.pdk)
        except SynthesisError as exc:
            result.stages.append(StageResult(name="syn", ok=False,
                                             error=str(exc)))
            return result
        result.design = synth.netlist.module
        result.stages.append(StageResult(
            name="syn", ok=True,
            metrics={"cells": synth.num_cells,
                     "area_um2": round(synth.area_um2, 2),
                     "registers": len(synth.netlist.flops)}))

        # -- floorplan -----------------------------------------------------
        fp = self._floorplan(synth, constraints)
        result.stages.append(fp)
        if not fp.ok:
            return result
        die_w = float(fp.metrics["die_w"])
        die_h = float(fp.metrics["die_h"])

        # -- placement -----------------------------------------------------
        # Auto-sized floorplans may grow (row fragmentation); explicit
        # die constraints are hard limits.
        expandable = constraints.die_area is None
        place = self._place(synth, die_w, die_h,
                            constraints.core_margin_um,
                            expandable=expandable)
        result.stages.append(place)
        if not place.ok:
            return result
        positions = place.metrics.pop("_positions")
        die_h = float(place.metrics.get("die_h", die_h))
        hpwl = float(place.metrics["hpwl_um"])

        # -- clock tree --------------------------------------------------
        flops = len(synth.netlist.flops)
        buffers = max(int(math.ceil(math.log2(flops + 1))), 1) if flops \
            else 0
        skew = buffers * self.pdk.cell("BUF").delay_ns * 0.25
        result.stages.append(StageResult(
            name="cts", ok=True,
            metrics={"clock_buffers": buffers,
                     "skew_ns": round(skew, 4)}))

        # -- routing -----------------------------------------------------
        wirelength = hpwl * 1.15
        # ~2 routable wire-um per um^2 per layer (pitch + blockage margin)
        capacity = die_w * die_h * self.pdk.metal_layers * 2.0
        congestion = wirelength / max(capacity, 1e-9)
        route_ok = congestion <= 1.0
        result.stages.append(StageResult(
            name="route", ok=route_ok,
            metrics={"wirelength_um": round(wirelength, 1),
                     "congestion": round(congestion, 3)},
            error=None if route_ok else "routing congestion > 100%"))
        if not route_ok:
            return result

        # -- STA -----------------------------------------------------------
        gate_path = synth.critical_path_ns
        num_nets = max(synth.num_cells, 1)
        avg_net = wirelength / num_nets
        depth = max(int(gate_path / max(self.pdk.cell("INV").delay_ns,
                                        1e-9)) // 2, 1)
        wire_path = avg_net * self.pdk.wire_delay_ns_per_um * depth
        critical = gate_path + wire_path + skew
        slack = constraints.clock_period_ns - critical
        sta_ok = slack >= 0
        result.stages.append(StageResult(
            name="sta", ok=sta_ok,
            metrics={"critical_ns": round(critical, 4),
                     "slack_ns": round(slack, 4)},
            error=None if sta_ok else "setup timing violated"))
        if not sta_ok:
            return result

        # -- power ---------------------------------------------------------
        freq_ghz = 1.0 / constraints.clock_period_ns
        activity = 0.1
        dynamic_mw = sum(self.pdk.cell(g.kind).dynamic_pj
                         for g in synth.netlist.gates) \
            * activity * freq_ghz * 1e-3
        leakage_mw = sum(self.pdk.cell(g.kind).leakage_nw
                         for g in synth.netlist.gates) * 1e-6
        wire_mw = (wirelength * self.pdk.wire_cap_ff_per_um
                   * activity * freq_ghz) * 1e-6 * 1.8 ** 2
        power = dynamic_mw + leakage_mw + wire_mw
        result.stages.append(StageResult(
            name="power", ok=True,
            metrics={"power_mw": round(power, 4)}))

        # -- export --------------------------------------------------------
        result.gds = {
            "design": result.design,
            "units_um": 1.0,
            "die": [0.0, 0.0, round(die_w, 3), round(die_h, 3)],
            "cell_count": synth.num_cells,
            "cells": [
                {"name": f"u{i}", "type": gate.kind,
                 "xy": [round(positions[i][0], 3),
                        round(positions[i][1], 3)]}
                for i, gate in enumerate(synth.netlist.gates)
            ],
        }
        result.stages.append(StageResult(
            name="export", ok=True,
            metrics={"gds_cells": synth.num_cells}))

        result.ppa = PPAReport(
            cell_area_um2=synth.area_um2,
            die_area_um2=die_w * die_h,
            utilization_pct=100.0 * synth.area_um2 / (die_w * die_h),
            num_cells=synth.num_cells,
            num_flops=len(synth.netlist.flops),
            critical_path_ns=critical,
            fmax_mhz=1000.0 / critical if critical > 0 else 10_000.0,
            slack_ns=slack,
            power_mw=power,
            wirelength_um=wirelength,
        )
        return result

    # -- stage helpers -----------------------------------------------------

    def _floorplan(self, synth: SynthResult,
                   constraints: FlowConstraints) -> StageResult:
        margin = constraints.core_margin_um
        if constraints.die_area is not None:
            die_w, die_h = constraints.die_area
        else:
            density = max(min(constraints.density_pct, 95.0), 5.0) / 100.0
            core_area = synth.area_um2 / density
            aspect = max(constraints.aspect_ratio, 0.1)
            core_w = math.sqrt(core_area / aspect)
            core_h = core_area / core_w
            die_w = core_w + 2 * margin
            die_h = core_h + 2 * margin
        core_w = die_w - 2 * margin
        core_h = die_h - 2 * margin
        if core_w <= 0 or core_h <= 0:
            return StageResult(name="floorplan", ok=False,
                               error="core margin exceeds die")
        if synth.area_um2 > core_w * core_h:
            return StageResult(
                name="floorplan", ok=False,
                error=f"cells ({synth.area_um2:.1f} um^2) do not fit core "
                      f"({core_w * core_h:.1f} um^2)")
        return StageResult(
            name="floorplan", ok=True,
            metrics={"die_w": round(die_w, 3), "die_h": round(die_h, 3),
                     "core_utilization":
                         round(100 * synth.area_um2 / (core_w * core_h),
                               1)})

    def _place(self, synth: SynthResult, die_w: float, die_h: float,
               margin: float, expandable: bool = False) -> StageResult:
        """Row-based deterministic placement + HPWL accounting.

        ``expandable`` lets an auto-sized die grow row by row when row
        fragmentation overflows the initial estimate (what a real
        floorplanner's utilization iteration does).
        """
        gates = synth.netlist.gates
        positions: list[tuple[float, float]] = []
        row_height = self.pdk.site_height_um
        x = margin
        y = margin
        for gate in gates:
            cell = self.pdk.cell(gate.kind)
            width = max(cell.area_um2 / row_height, self.pdk.site_width_um)
            if x + width > die_w - margin:
                x = margin
                y += row_height
            if y + row_height > die_h - margin:
                if expandable:
                    die_h = y + row_height + margin
                else:
                    return StageResult(name="place", ok=False,
                                       error="placement overflow")
            positions.append((x, y))
            x += width
        net_pins: dict[str, list[tuple[float, float]]] = {}
        for i, gate in enumerate(gates):
            for net in gate.inputs + [gate.output]:
                net_pins.setdefault(net, []).append(positions[i])
        hpwl = 0.0
        for pins in net_pins.values():
            if len(pins) < 2:
                continue
            xs = [p[0] for p in pins]
            ys = [p[1] for p in pins]
            hpwl += (max(xs) - min(xs)) + (max(ys) - min(ys))
        return StageResult(
            name="place", ok=True,
            metrics={"hpwl_um": round(hpwl, 2),
                     "rows": int((die_h - 2 * margin) / row_height),
                     "die_h": round(die_h, 3),
                     "_positions": positions})
