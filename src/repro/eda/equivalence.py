"""Simulation-based logical equivalence checking (RTL vs netlist).

Drives the original RTL and its own synthesized gate-level netlist with
the same (seeded) random vectors inside one generated testbench and
compares outputs cycle by cycle with ``!==``.  This is the repo's answer
to "how do we know the synthesizer is right": every synthesizable design
must be vector-equivalent to its netlist.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..sim import run_simulation
from ..verilog import ast, parse
from .netlist_writer import _net_name, netlist_to_verilog
from .synthesis import SynthesisError, Synthesizer

_RESET_NAMES = ("rst_n", "reset_n", "rst", "reset")


@dataclass
class EquivalenceResult:
    equivalent: bool
    vectors: int
    mismatches: int
    error: str | None = None


def _port_info(module: ast.Module) -> tuple[list[tuple[str, int]],
                                            list[tuple[str, int]]]:
    """(inputs, outputs) as (name, width) lists, header order."""
    directions: dict[str, str] = {}
    widths: dict[str, int] = {}

    def record(decl: ast.PortDecl) -> None:
        width = 1
        if decl.range is not None:
            from ..sim.elaborate import const_eval
            msb = const_eval(decl.range.msb, {}).to_int()
            lsb = const_eval(decl.range.lsb, {}).to_int()
            width = abs(msb - lsb) + 1
        for port_name in decl.names:
            directions[port_name] = decl.direction
            widths[port_name] = width

    for port in module.ports:
        if port.decl is not None:
            record(port.decl)
    for item in module.items_of_type(ast.PortDecl):
        record(item)
    inputs = [(p.name, widths.get(p.name, 1)) for p in module.ports
              if directions.get(p.name) == "input"]
    outputs = [(p.name, widths.get(p.name, 1)) for p in module.ports
               if directions.get(p.name) == "output"]
    return inputs, outputs


def _gate_connections(name: str, width: int, target: str) -> list[str]:
    """Named netlist-port connections for one RTL port."""
    conns = []
    for bit in range(width):
        flat = _net_name(f"{name}[{bit}]")
        source = f"{target}[{bit}]" if width > 1 else target
        conns.append(f".{flat}({source})")
    return conns


def check_equivalence(rtl_text: str, top: str | None = None,
                      vectors: int = 24, seed: int = 0
                      ) -> EquivalenceResult:
    """Random-vector equivalence of a design and its synthesized netlist."""
    source = parse(rtl_text)
    module = source.module(top) if top else source.modules[0]
    try:
        netlist = Synthesizer(module).run()
    except SynthesisError as exc:
        return EquivalenceResult(equivalent=False, vectors=0,
                                 mismatches=0, error=str(exc))
    gate_text = netlist_to_verilog(netlist)
    inputs, outputs = _port_info(module)
    clock = netlist.clock
    reset = next((name for name, _ in inputs if name in _RESET_NAMES),
                 None)
    rng = random.Random(seed)

    drive_inputs = [(name, width) for name, width in inputs
                    if name != clock]
    decls = []
    for name, width in inputs:
        rng_txt = f" [{width - 1}:0]" if width > 1 else ""
        decls.append(f"  reg{rng_txt} {name};")
    for name, width in outputs:
        rng_txt = f" [{width - 1}:0]" if width > 1 else ""
        decls.append(f"  wire{rng_txt} {name}_rtl;")
        for bit in range(width):
            decls.append(f"  wire {_net_name(name + f'[{bit}]')}_g;")

    rtl_conns = [f".{name}({name})" for name, _ in inputs]
    rtl_conns += [f".{name}({name}_rtl)" for name, _ in outputs]
    gate_conns = []
    for name, width in inputs:
        gate_conns.extend(_gate_connections(name, width, name))
    for name, width in outputs:
        for bit in range(width):
            flat = _net_name(f"{name}[{bit}]")
            gate_conns.append(f".{flat}({flat}_g)")

    compare_lines = []
    for name, width in outputs:
        gate_bits = ", ".join(
            f"{_net_name(name + f'[{bit}]')}_g"
            for bit in reversed(range(width)))
        compare_lines.append(
            f"    if ({name}_rtl !== {{{gate_bits}}}) "
            f"$display(\"MISMATCH {name} vector %0d\", vec); "
            f"else $display(\"MATCH {name}\");")

    stimulus = []
    for vec in range(vectors):
        for name, width in drive_inputs:
            if name == reset:
                continue
            value = rng.randrange(1 << width)
            stimulus.append(f"    {name} = {width}'d{value};")
        if clock is not None:
            stimulus.append("    #1;")
            stimulus.append(f"    {clock} = 1; #1; {clock} = 0; #1;")
        else:
            stimulus.append("    #1;")
        stimulus.append(f"    vec = {vec};")
        stimulus.extend(compare_lines)

    reset_block = ""
    if reset is not None:
        active = "1'b0" if reset.endswith("_n") else "1'b1"
        inactive = "1'b1" if reset.endswith("_n") else "1'b0"
        pulse = (f"    {reset} = {active};\n")
        if clock is not None:
            pulse += (f"    #1; {clock} = 1; #1; {clock} = 0; #1;\n"
                      f"    {clock} = 1; #1; {clock} = 0; #1;\n")
        else:
            pulse += "    #2;\n"
        pulse += f"    {reset} = {inactive};\n"
        reset_block = pulse

    clk_init = f"    {clock} = 0;\n" if clock is not None else ""
    zero_inputs = "\n".join(f"    {name} = 0;"
                            for name, _ in drive_inputs)
    testbench = f"""module eq_tb;
{chr(10).join(decls)}
  integer vec;
  {module.name} dut_rtl ({', '.join(rtl_conns)});
  {netlist.module}_gates dut_gate ({', '.join(gate_conns)});
  initial begin
{clk_init}{zero_inputs}
{reset_block}{chr(10).join(stimulus)}
    $finish;
  end
endmodule
"""
    sim = run_simulation(rtl_text + "\n" + gate_text + "\n" + testbench,
                         top="eq_tb")
    if not sim.ok:
        return EquivalenceResult(equivalent=False, vectors=vectors,
                                 mismatches=0, error=sim.error)
    mismatches = sum(1 for line in sim.display
                     if line.startswith("MISMATCH"))
    return EquivalenceResult(equivalent=mismatches == 0,
                             vectors=vectors, mismatches=mismatches)
