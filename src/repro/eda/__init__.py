"""EDA substrate: mini SiliconCompiler + synthesis + RTL-to-GDS flow.

* :class:`Chip` — the SiliconCompiler-style API surface scripts drive;
* :func:`synthesize` — AST → gate-level netlist (yosys stand-in);
* :class:`Flow` — floorplan/place/CTS/route/STA/power/export backend
  (OpenLane stand-in on a sky130-like PDK);
* :func:`run_script` — execute + judge generated scripts (Table 4);
* :func:`reference_corpus` — the ~200 valid scripts of Sec. 3.3.
"""

from .chip import Chip, SCError
from .flow import Flow, FlowConstraints, FlowResult, PPAReport, StageResult
from .pdk import PDK, SKY130, TARGETS, Cell
from .reference_scripts import (BENCHMARK_SCRIPTS, DESIGN_SOURCES,
                                reference_corpus)
from .equivalence import EquivalenceResult, check_equivalence
from .netlist_writer import netlist_to_verilog
from .script_runner import Expectation, ScriptCheck, run_script
from .synthesis import (Gate, Netlist, SynthesisError, SynthResult,
                        Synthesizer, synthesize)

__all__ = [
    "Chip", "SCError", "Flow", "FlowConstraints", "FlowResult",
    "PPAReport", "StageResult", "PDK", "SKY130", "TARGETS", "Cell",
    "synthesize", "SynthResult", "Synthesizer", "Netlist", "Gate",
    "SynthesisError", "run_script", "ScriptCheck", "Expectation",
    "reference_corpus", "BENCHMARK_SCRIPTS", "DESIGN_SOURCES",
    "netlist_to_verilog", "check_equivalence", "EquivalenceResult",
]
