"""On-demand model hosting: digest-keyed, LRU-bounded live weights.

:class:`ModelHost` turns serialized weight bundles (from train
artifacts or ``CheckpointStore`` directories) into live, LoRA-merged
:class:`TinyTransformerLM` instances exactly once per distinct
``weights_sha256`` — concurrent serve batches and eval cells that hit
the same trained weights share one decode-ready model, and retrained
artifacts under the same name can never collide because the digest, not
the name, is the cache key.  The bundle digest is re-verified on every
cold load (:func:`repro.train.model_from_bundle`), so a corrupt blob is
an error, never a silently wrong model.

A process-wide :func:`shared_host` serves the executor and the eval
path; unit tests build private hosts to exercise eviction and stats.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from ..llm.tiny_transformer import TinyTransformerLM
from ..llm.tokenizer import Tokenizer
from ..scale.cache import LRUCache
from ..train.weights import bundle_from_checkpoint, model_from_bundle

__all__ = ["HostStats", "LoadedModel", "ModelHost", "shared_host"]

DEFAULT_CAPACITY = 4


@dataclass
class HostStats:
    hits: int = 0
    misses: int = 0

    def to_dict(self) -> dict:
        return {"hits": self.hits, "misses": self.misses}


@dataclass
class LoadedModel:
    """One resident model: live weights + the tokenizer it decodes with."""

    digest: str
    model: TinyTransformerLM
    tokenizer: Tokenizer
    config: dict = field(default_factory=dict)


class ModelHost:
    """LRU of live models keyed by sha256 weights digest."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        self._cache: LRUCache[str, LoadedModel] = LRUCache(
            maxsize=capacity)
        self._lock = threading.Lock()
        self.stats = HostStats()

    @property
    def resident(self) -> int:
        return len(self._cache)

    def load_bundle(self, bundle: dict) -> LoadedModel:
        """The live model for ``bundle`` (cold load at most once).

        LoRA adapters, when the bundle carries them, are merged into
        the dense weights at load — the served model never runs the
        adapter path.
        """
        digest = bundle.get("weights_sha256")
        if not digest:
            raise ValueError("weights bundle has no weights_sha256")
        with self._lock:
            loaded = self._cache.get(digest)
            if loaded is not None:
                self.stats.hits += 1
                return loaded
            self.stats.misses += 1
            model, tokenizer = model_from_bundle(bundle, merge=True)
            loaded = LoadedModel(digest=digest, model=model,
                                 tokenizer=tokenizer,
                                 config=dict(bundle["model"]))
            self._cache.put(digest, loaded)
            return loaded

    def load_checkpoint(self, root: str,
                        fingerprint: str | None = None) -> LoadedModel:
        """Load the newest verified checkpoint under ``root``."""
        return self.load_bundle(bundle_from_checkpoint(root, fingerprint))


_SHARED = ModelHost()


def shared_host() -> ModelHost:
    """The process-wide host (serve executor + eval adapters)."""
    return _SHARED
