"""Production-shaped inference over the trained numpy transformer.

Layers (each usable on its own):

* :mod:`repro.infer.decode` — batched KV-cache greedy/temperature
  sampling, token-identical to ``TinyTransformerLM.generate``;
* :mod:`repro.infer.host` — :class:`ModelHost`, an LRU of live models
  keyed by sha256 weights digest, loading ``repro.train`` weight
  bundles / checkpoint stores on demand (LoRA merged at load);
* :mod:`repro.infer.sampled` — :class:`SampledModel`, the eval-facing
  adapter that generates Verilog candidates by actually sampling the
  trained weights (replacing the behavioural bridge for trained
  artifacts).

The serving layer lives in :mod:`repro.serve` as the ``"infer"`` job
kind; ``repro infer`` / ``repro submit infer`` are the CLI entries.
"""

from .decode import forward_logits, sample_tokens
from .host import LoadedModel, ModelHost, shared_host
from .sampled import SampledModel

__all__ = [
    "forward_logits", "sample_tokens",
    "LoadedModel", "ModelHost", "shared_host",
    "SampledModel",
]
