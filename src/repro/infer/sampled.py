"""The eval-facing adapter that actually samples the trained weights.

Where :class:`repro.llm.BehavioralModel` *simulates* a model from a
calibrated profile, :class:`SampledModel` decodes real candidates from
a trained :class:`TinyTransformerLM` weights bundle: prompts are laid
out exactly like the finetuning text format
(``### instruct: …\\n### input: …\\n### output:``), encoded with the
run's own tokenizer, and completed with batched KV-cache sampling
(:func:`repro.infer.sample_tokens`) under content-derived seeds — the
same candidate list for the same weights, prompt and knobs, on every
host and worker count, which is what keeps eval cells cacheable.

Identity for caching is the **weights digest**, not the registered
name: :attr:`eval_fingerprint` feeds ``repro.eval.profile_digest`` so
two artefacts registered under the same spec name can never share eval
cells (the wart ISSUE 6 retires).

The EDA-script suite (Table 4) stays behavioural — the tiny LM is
trained on Verilog-aligned text, not SiliconCompiler Python, so script
emission still comes from the artefact's calibrated profile.
"""

from __future__ import annotations

from ..llm.behavioral import BehavioralModel, ModelProfile
from ..train.data import stable_seed
from .decode import sample_tokens
from .host import shared_host

__all__ = ["SampledModel", "DEFAULT_MAX_NEW_TOKENS",
           "DEFAULT_TEMPERATURE"]

DEFAULT_MAX_NEW_TOKENS = 48
DEFAULT_TEMPERATURE = 0.8


def prompt_text(instruct: str, inp: str = "") -> str:
    """The finetuning record layout with the output left open."""
    return f"### instruct: {instruct}\n### input: {inp}\n### output:"


class SampledModel:
    """Generate candidates by decoding from trained weights.

    Picklable (the bundle is a plain JSON-safe dict; live weights are
    always resolved through the per-process :func:`shared_host`), so
    eval tasks carrying it can fan out over process pools.
    """

    def __init__(self, profile: ModelProfile, weights: dict,
                 seed: int = 0,
                 max_new_tokens: int = DEFAULT_MAX_NEW_TOKENS,
                 temperature: float = DEFAULT_TEMPERATURE):
        self.profile = profile
        self.seed = seed
        self.weights = weights
        self.max_new_tokens = max_new_tokens
        self.temperature = temperature

    @property
    def name(self) -> str:
        return self.profile.name

    @property
    def weights_sha256(self) -> str:
        return self.weights.get("weights_sha256", "")

    @property
    def eval_fingerprint(self) -> str:
        """What eval cells key on: weights identity + decode knobs."""
        return (f"{self.weights_sha256}:{self.max_new_tokens}"
                f":{self.temperature}")

    # -- decoding ---------------------------------------------------------

    def _behavioral(self) -> BehavioralModel:
        return BehavioralModel(self.profile, seed=self.seed)

    def complete(self, instructs: list[str], salts: list[object],
                 inputs: list[str] | None = None) -> list[str]:
        """One decoded completion per instruct (one shared batch).

        ``salts`` derive the per-row sampling seed together with the
        weights digest, so distinct samples of one prompt diverge while
        every rerun reproduces them exactly.
        """
        loaded = shared_host().load_bundle(self.weights)
        tokenizer = loaded.tokenizer
        prompts, seeds = [], []
        for index, instruct in enumerate(instructs):
            inp = inputs[index] if inputs else ""
            text = prompt_text(instruct, inp)
            prompts.append([tokenizer.bos_id]
                           + tokenizer.encode(text))
            seeds.append(stable_seed("infer", self.weights_sha256,
                                     salts[index], self.seed))
        outs = sample_tokens(loaded.model, prompts,
                             max_tokens=self.max_new_tokens,
                             temperature=self.temperature, seeds=seeds,
                             stop_token=tokenizer.eos_id)
        return [tokenizer.decode(out[len(prompts[i]):])
                for i, out in enumerate(outs)]

    # -- the eval-suite surface (mirrors BehavioralModel) -----------------

    def solves(self, tier: str, difficulty: float,
               level: str = "middle") -> bool:
        return self.profile.solve_rate.get(tier, 0.0) > difficulty

    def generate_verilog(self, reference: str, tier: str,
                         difficulty: float, level: str = "middle",
                         n_samples: int = 5, problem_name: str = "",
                         prompt: str = "") -> list[str]:
        """``n_samples`` sampled implementations for one problem.

        ``prompt`` is the problem's natural-language description at the
        requested detail level (passed by ``evaluate_cell``); the
        reference solution is *not* shown to the model.
        """
        instruct = prompt or f"Write Verilog for {problem_name}"
        return self.complete(
            [instruct] * n_samples,
            [("gen", problem_name, level, k) for k in range(n_samples)])

    def repair_verilog(self, broken: str, feedback: str, reference: str,
                       difficulty: float, n_samples: int = 5,
                       problem_name: str = "") -> list[str]:
        """Sampled repair attempts: broken source + tool feedback in."""
        instruct = "Fix the following Verilog so it compiles and " \
            "passes its testbench.\n" + feedback
        return self.complete(
            [instruct] * n_samples,
            [("repair", problem_name, k) for k in range(n_samples)],
            inputs=[broken] * n_samples)

    def generate_script(self, task_name: str, reference_script: str,
                        attempt: int) -> str:
        return self._behavioral().generate_script(
            task_name, reference_script, attempt)
