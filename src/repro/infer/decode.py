"""Batched autoregressive decoding with per-sequence KV caches.

The naive :meth:`TinyTransformerLM.generate` recomputes the full prompt
window for every emitted token (``O(T^2 d + T d^2)`` per step, batch 1).
:func:`sample_tokens` produces **token-identical** output for a whole
batch of prompts while doing ``O(T d + d^2)`` work per step: each
sequence's per-layer attention keys/values are computed once and cached,
and each step projects only the newly appended token, attending over the
cached prefix.

Equivalence contract — *token* identity, not bit identity.  Every
formula here mirrors the training forward expression-for-expression
(via the side-effect-free ``apply`` helpers on ``Linear``/``LayerNorm``),
so the arithmetic is mathematically exact; BLAS kernel selection still
varies with the GEMM's row count, so float bits can differ in the last
ulp at larger ``d_model``.  Emitted token ids match ``generate()``
(greedy and temperature sampling, same per-sequence
``np.random.default_rng(seed)`` stream), which is what
``tests/test_infer_decode.py`` pins, fixed and property-based.

Three regimes per sequence:

* **prefill** — the prompt is run once as a right-padded batch (right
  padding is exact under a causal mask: a real position never attends a
  pad), filling the cache and yielding the first sampled token;
* **incremental** — while ``len(out) <= max_len`` positions are stable,
  so one new token per step is projected and appended to the cache;
* **slide** — once the window ``out[-max_len:]`` starts sliding, every
  position embedding shifts and the cache is invalid; such rows fall
  back to a full batched window recompute, exactly like the naive path.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..llm.tiny_transformer import TinyTransformerLM

__all__ = ["forward_logits", "sample_tokens"]


# -- side-effect-free forward mirrors ------------------------------------


def _attn_apply(attn, x: np.ndarray) -> np.ndarray:
    """Mirror of ``CausalSelfAttention.forward`` without caching."""
    q = attn._split(attn.q_proj.apply(x))
    k = attn._split(attn.k_proj.apply(x))
    v = attn._split(attn.v_proj.apply(x))
    scale = 1.0 / np.sqrt(attn.d_head)
    scores = q @ k.transpose(0, 1, 3, 2) * scale
    seq = x.shape[1]
    mask = np.triu(np.ones((seq, seq), dtype=bool), k=1)
    scores = np.where(mask, -1e9, scores)
    scores -= scores.max(axis=-1, keepdims=True)
    probs = np.exp(scores)
    probs /= probs.sum(axis=-1, keepdims=True)
    context = probs @ v
    return attn.out_proj.apply(attn._merge(context))


def _block_apply(block, x: np.ndarray) -> np.ndarray:
    x = x + _attn_apply(block.attn, block.ln1.apply(x))
    hidden = block.mlp.fc1.apply(block.ln2.apply(x))
    return x + block.mlp.fc2.apply(np.maximum(hidden, 0.0))


def forward_logits(model: TinyTransformerLM, ids: np.ndarray) -> np.ndarray:
    """(B, T) ids → (B, T, V) logits, without mutating module state.

    Same arithmetic as ``TinyTransformerLM.forward`` (LoRA adapters
    included when attached) but safe to call concurrently: nothing is
    written to the model's backprop caches.
    """
    if ids.shape[1] > model.config.max_len:
        raise ValueError("sequence longer than max_len")
    x = model.tok_emb.value[ids] + model.pos_emb.value[:ids.shape[1]]
    for block in model.blocks:
        x = _block_apply(block, x)
    x = model.ln_final.apply(x)
    return model.head.apply(x)


# -- KV-cache prefill and incremental step -------------------------------


def _prefill(model: TinyTransformerLM, ids: np.ndarray
             ) -> tuple[np.ndarray, list[tuple[np.ndarray, np.ndarray]]]:
    """Full forward over the padded prompt batch, returning the logits
    plus each layer's split keys/values ``(B, H, T, d_head)``."""
    x = model.tok_emb.value[ids] + model.pos_emb.value[:ids.shape[1]]
    seq = ids.shape[1]
    mask = np.triu(np.ones((seq, seq), dtype=bool), k=1)
    layer_kv = []
    for block in model.blocks:
        attn = block.attn
        h = block.ln1.apply(x)
        q = attn._split(attn.q_proj.apply(h))
        k = attn._split(attn.k_proj.apply(h))
        v = attn._split(attn.v_proj.apply(h))
        layer_kv.append((k, v))
        scale = 1.0 / np.sqrt(attn.d_head)
        scores = q @ k.transpose(0, 1, 3, 2) * scale
        scores = np.where(mask, -1e9, scores)
        scores -= scores.max(axis=-1, keepdims=True)
        probs = np.exp(scores)
        probs /= probs.sum(axis=-1, keepdims=True)
        x = x + attn.out_proj.apply(attn._merge(probs @ v))
        hidden = block.mlp.fc1.apply(block.ln2.apply(x))
        x = x + block.mlp.fc2.apply(np.maximum(hidden, 0.0))
    x = model.ln_final.apply(x)
    return model.head.apply(x), layer_kv


def _step(model: TinyTransformerLM, tokens: np.ndarray,
          positions: np.ndarray, lengths: np.ndarray, rows: np.ndarray,
          caches: list[tuple[np.ndarray, np.ndarray]]) -> np.ndarray:
    """One incremental decode step for ``rows``: project the newly
    appended token (at ``positions``), extend the caches, attend over
    the cached prefix.  Returns (len(rows), V) logits.

    Padded cache columns (``>= lengths``) are masked to ``-1e9`` like
    the training mask; after the shared max-subtraction they exp to an
    exact float 0.0, so they contribute nothing to ``probs @ V``.
    """
    x = model.tok_emb.value[tokens][:, None, :] \
        + model.pos_emb.value[positions][:, None, :]
    width = int(lengths.max())
    pad = np.arange(width)[None, None, None, :] \
        >= lengths[:, None, None, None]
    for layer, block in enumerate(model.blocks):
        attn = block.attn
        h = block.ln1.apply(x)
        q = attn._split(attn.q_proj.apply(h))
        k = attn._split(attn.k_proj.apply(h))
        v = attn._split(attn.v_proj.apply(h))
        cache_k, cache_v = caches[layer]
        cache_k[rows, :, positions, :] = k[:, :, 0, :]
        cache_v[rows, :, positions, :] = v[:, :, 0, :]
        keys = cache_k[rows][:, :, :width, :]
        values = cache_v[rows][:, :, :width, :]
        scale = 1.0 / np.sqrt(attn.d_head)
        scores = q @ keys.transpose(0, 1, 3, 2) * scale
        scores = np.where(pad, -1e9, scores)
        scores -= scores.max(axis=-1, keepdims=True)
        probs = np.exp(scores)
        probs /= probs.sum(axis=-1, keepdims=True)
        x = x + attn.out_proj.apply(attn._merge(probs @ values))
        hidden = block.mlp.fc1.apply(block.ln2.apply(x))
        x = x + block.mlp.fc2.apply(np.maximum(hidden, 0.0))
    x = model.ln_final.apply(x)
    return model.head.apply(x)[:, 0, :]


# -- sampling -------------------------------------------------------------


def _pick(logits: np.ndarray, temperature: float,
          rng: np.random.Generator) -> int:
    """Mirror of ``generate()``'s sampling lines, one token."""
    if temperature <= 0:
        return int(logits.argmax())
    scaled = logits / temperature
    scaled -= scaled.max()
    probs = np.exp(scaled)
    probs /= probs.sum()
    return int(rng.choice(len(probs), p=probs))


def _per_row(value, batch: int, name: str) -> list:
    if isinstance(value, (list, tuple)):
        if len(value) != batch:
            raise ValueError(f"{name} must have one entry per prompt")
        return list(value)
    return [value] * batch


def sample_tokens(model: TinyTransformerLM,
                  prompts: Sequence[Sequence[int]],
                  max_tokens: int = 16,
                  temperature: float | Sequence[float] = 0.0,
                  seeds: int | Sequence[int] = 0,
                  stop_token: int | None = None) -> list[list[int]]:
    """Batched KV-cache decoding, token-identical to the naive path.

    Returns one full token list (prompt + completions) per prompt,
    equal to ``[model.generate(p, max_tokens, temperature_i, seed_i)
    for ...]`` — each row gets its own ``np.random.default_rng(seed_i)``
    stream, consumed exactly like ``generate()`` (one draw per step,
    only when its temperature is positive).  ``temperature`` and
    ``seeds`` may be scalars or per-prompt sequences.

    With ``stop_token`` set, a row stops extending once it emits that
    token; its output equals the naive output truncated just after the
    first stop (suffixes never influence earlier tokens).
    """
    batch = len(prompts)
    if batch == 0:
        return []
    if any(len(p) == 0 for p in prompts):
        raise ValueError("prompts must be non-empty")
    temps = _per_row(temperature, batch, "temperature")
    seed_list = _per_row(seeds, batch, "seeds")
    rngs = [np.random.default_rng(s) for s in seed_list]
    outs = [list(map(int, p)) for p in prompts]
    if max_tokens <= 0:
        return outs
    max_len = model.config.max_len
    config = model.config
    d_head = config.d_model // config.n_heads
    caches = [(np.zeros((batch, config.n_heads, max_len, d_head)),
               np.zeros((batch, config.n_heads, max_len, d_head)))
              for _ in range(config.n_layers)]

    cached_rows = [b for b in range(batch) if len(outs[b]) <= max_len]
    slide_rows = [b for b in range(batch) if len(outs[b]) > max_len]
    finished: set[int] = set()

    def emit(row: int, logits: np.ndarray) -> None:
        token = _pick(logits, temps[row], rngs[row])
        outs[row].append(token)
        if stop_token is not None and token == stop_token:
            finished.add(row)

    # Step 0: prefill the cache rows (one right-padded batch), naive
    # window forward for rows whose prompt already overflows max_len.
    if cached_rows:
        lengths = [len(outs[b]) for b in cached_rows]
        width = max(lengths)
        ids = np.zeros((len(cached_rows), width), dtype=np.int64)
        for i, b in enumerate(cached_rows):
            ids[i, :lengths[i]] = outs[b]
        logits, layer_kv = _prefill(model, ids)
        for layer, (k, v) in enumerate(layer_kv):
            caches[layer][0][cached_rows, :, :width, :] = k
            caches[layer][1][cached_rows, :, :width, :] = v
        for i, b in enumerate(cached_rows):
            emit(b, logits[i, lengths[i] - 1])
    if slide_rows:
        ids = np.array([outs[b][-max_len:] for b in slide_rows])
        logits = forward_logits(model, ids)[:, -1]
        for i, b in enumerate(slide_rows):
            emit(b, logits[i])

    for _ in range(max_tokens - 1):
        if len(finished) == batch:
            break
        # Rows whose window just started sliding leave the cache pool.
        slid = [b for b in cached_rows if len(outs[b]) > max_len]
        cached_rows = [b for b in cached_rows if len(outs[b]) <= max_len]
        slide_rows += slid
        inc = [b for b in cached_rows if b not in finished]
        if inc:
            rows = np.array(inc)
            lengths = np.array([len(outs[b]) for b in inc])
            tokens = np.array([outs[b][-1] for b in inc])
            logits = _step(model, tokens, lengths - 1, lengths, rows,
                           caches)
            for i, b in enumerate(inc):
                emit(b, logits[i])
        live_slide = [b for b in slide_rows if b not in finished]
        if live_slide:
            ids = np.array([outs[b][-max_len:] for b in live_slide])
            logits = forward_logits(model, ids)[:, -1]
            for i, b in enumerate(live_slide):
                emit(b, logits[i])
    return outs
