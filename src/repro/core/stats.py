"""Dataset-scale accounting (paper Table 2).

``DatasetStats`` aggregates record counts and serialized sizes per task and
renders the same rows Table 2 reports.
"""

from __future__ import annotations

from dataclasses import dataclass

from .records import Dataset, Task

#: Paper's Table 2, for side-by-side reporting: (size, count).
PAPER_TABLE2 = {
    Task.NL_VERILOG: ("1784.24MB", 124_000),
    Task.MASK_COMPLETION: ("2145.29MB", 107_000),
    Task.DEBUG: ("523.77MB", 240_000),
    Task.WORD_COMPLETION: ("21GB", 3_700_000),
    Task.MODULE_COMPLETION: ("693MB", 400_000),
    Task.STATEMENT_COMPLETION: ("2.9GB", 2_388_000),
    Task.EDA_SCRIPT: ("301KB", 200),
}

#: Row order as printed in the paper.
TABLE2_ORDER = (
    Task.NL_VERILOG, Task.MASK_COMPLETION, Task.DEBUG,
    Task.WORD_COMPLETION, Task.MODULE_COMPLETION,
    Task.STATEMENT_COMPLETION, Task.EDA_SCRIPT,
)


@dataclass(frozen=True)
class TaskStats:
    task: Task
    count: int
    size_bytes: int

    @property
    def size_human(self) -> str:
        return format_size(self.size_bytes)


def format_size(size_bytes: int) -> str:
    """Render like the paper: KB / MB / GB with two decimals."""
    if size_bytes >= 1 << 30:
        return f"{size_bytes / (1 << 30):.2f}GB"
    if size_bytes >= 1 << 20:
        return f"{size_bytes / (1 << 20):.2f}MB"
    return f"{size_bytes / (1 << 10):.2f}KB"


def dataset_stats(dataset: Dataset) -> list[TaskStats]:
    """Per-task statistics in Table 2 row order."""
    sizes: dict[Task, int] = {}
    counts: dict[Task, int] = {}
    for record in dataset:
        counts[record.task] = counts.get(record.task, 0) + 1
        sizes[record.task] = sizes.get(record.task, 0) + record.size_bytes
    return [TaskStats(task=task, count=counts.get(task, 0),
                      size_bytes=sizes.get(task, 0))
            for task in TABLE2_ORDER]


def render_table2(stats: list[TaskStats],
                  scale_note: str | None = None) -> str:
    """Text rendering of Table 2 with paper numbers alongside."""
    header = (f"{'Task':<42} {'Output Size':>12} {'Output Number':>14} "
              f"{'Paper Size':>12} {'Paper Number':>13}")
    lines = [header, "-" * len(header)]
    for entry in stats:
        paper_size, paper_count = PAPER_TABLE2[entry.task]
        lines.append(
            f"{entry.task.table2_label:<42} {entry.size_human:>12} "
            f"{entry.count:>14,} {paper_size:>12} {paper_count:>13,}")
    if scale_note:
        lines.append(f"note: {scale_note}")
    return "\n".join(lines)
