"""Natural-language ↔ Verilog alignment augmentation (paper Sec. 3.1.2).

For every parseable module the framework emits::

    { "instruct": "give me the Verilog module of this description. ",
      "input":  "<natural language from the program-analysis rules>",
      "output": "<Verilog file>" }

Additionally, per-construct *partial* descriptions are emitted (one per
translatable syntax structure), matching the paper's observation that a
file with *k* translatable structures grows the dataset at O(k).
"""

from __future__ import annotations

from collections.abc import Iterator

from ..nl import describe_module
from ..verilog import VerilogError, parse
from .records import Record, Task, make_record


def alignment_records(text: str,
                      include_partial: bool = True) -> Iterator[Record]:
    """Aligned (description, Verilog) pairs for every module in ``text``."""
    try:
        source = parse(text)
    except VerilogError:
        return
    for module in source.modules:
        description = describe_module(module)
        if not description.lines:
            continue
        yield make_record(Task.NL_VERILOG, description.text, text.strip(),
                          module=module.name, kind="full")
        if not include_partial:
            continue
        # O(k) growth: one extra record per translatable structure, using
        # the structure's sentence as a focused description.
        if len(description.lines) > 1:
            for line in description.lines:
                yield make_record(
                    Task.NL_VERILOG,
                    f"{description.lines[0].text} {line.text}",
                    text.strip(),
                    module=module.name, kind="partial", rule=line.rule)


def translatable_structures(text: str) -> int:
    """Number *k* of syntax structures the rule set translates."""
    try:
        source = parse(text)
    except VerilogError:
        return 0
    return sum(len(describe_module(module).lines)
               for module in source.modules)
