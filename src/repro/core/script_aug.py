"""EDA-script dataset augmentation (paper Sec. 3.3, Eq. 1).

The paper feeds ~200 valid SiliconCompiler scripts to an *existing* LLM
(GPT-3.5) and keeps the generated natural-language description::

    GeneralLLM(SiliconCompiler Script) = Natural language Desc.

Here the "existing LLM" is any callable ``describer(script_text) -> str``;
the default is :class:`repro.llm.oracle.DescriptionOracle`, a
program-analysis describer over the mini-SiliconCompiler API that plays
GPT-3.5's role (see DESIGN.md, substitution table).
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator

from .records import Record, Task, make_record

Describer = Callable[[str], str]


def script_records(scripts: Iterable[str],
                   describer: Describer) -> Iterator[Record]:
    """(LLM description → script) pairs in the paper's record format."""
    for script in scripts:
        description = describer(script)
        if not description.strip():
            continue
        yield make_record(Task.EDA_SCRIPT, description.strip(),
                          script.strip())


def default_describer() -> Describer:
    """The GPT-3.5 stand-in used throughout the repo."""
    from ..llm.oracle import DescriptionOracle
    return DescriptionOracle().describe
