"""Token-position utilities shared by the completion and mutation stages.

The mutation engine edits raw source text (so it can produce files that no
longer parse); it locates edit sites via lexer tokens and their byte spans.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..verilog import Token, TokenKind, tokenize


@dataclass(frozen=True)
class TokenSpan:
    """A token together with its byte span in the original text."""

    token: Token
    start: int
    end: int

    @property
    def text_len(self) -> int:
        return self.end - self.start


def token_spans(text: str) -> list[TokenSpan]:
    """Tokens with byte offsets (EOF excluded).

    Strings and escaped identifiers report the span of their *value* only,
    so callers that plan to splice text should avoid them as targets.
    """
    line_starts = [0]
    for pos, ch in enumerate(text):
        if ch == "\n":
            line_starts.append(pos + 1)
    spans = []
    for token in tokenize(text):
        if token.kind is TokenKind.EOF:
            break
        start = line_starts[token.line - 1] + token.col - 1
        spans.append(TokenSpan(token=token, start=start,
                               end=start + max(len(token.value), 1)))
    return spans


@dataclass(frozen=True)
class Edit:
    """Replace text[start:end] with ``replacement``."""

    start: int
    end: int
    replacement: str
    description: str = ""


def apply_edits(text: str, edits: list[Edit]) -> str:
    """Apply non-overlapping edits (sorted internally, right to left)."""
    ordered = sorted(edits, key=lambda e: e.start, reverse=True)
    for prev, nxt in zip(ordered, ordered[1:]):
        if nxt.end > prev.start:
            raise ValueError("overlapping edits")
    result = text
    for edit in ordered:
        result = result[:edit.start] + edit.replacement + result[edit.end:]
    return result
