"""The full design-data augmentation pipeline (paper Fig. 4).

``AugmentationPipeline`` wires every stage together:

1. multi-level completion (Sec. 3.1.1),
2. program-analysis NL alignment (Sec. 3.1.2),
3. rule-based mutation → repair pairs (Sec. 3.2.1),
4. checker-feedback repair pairs (Sec. 3.2.2),
5. EDA-script description pairs (Sec. 3.3),

then trims over-length records (Sec. 4 "Implementation").  Every stage can
be disabled individually, which is how the ablation experiments (Fig. 7 /
Table 5 "General Aug") build their completion-only datasets.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from .alignment import alignment_records
from .completion import completion_records
from .records import Dataset, Task
from .repair import feedback_repair_records, repair_records
from .script_aug import Describer, script_records


@dataclass
class PipelineConfig:
    """Stage toggles and per-stage knobs."""

    completion: bool = True
    alignment: bool = True
    repair: bool = True
    repair_feedback: bool = True
    eda_scripts: bool = True
    include_partial_alignment: bool = True
    repair_variants: int = 3
    max_mutations: int = 5
    statement_cap: int | None = 64
    token_cap: int | None = 256
    max_tokens: int = 1800          # trimming budget ≈ Llama-2 context
    seed: int = 0

    @staticmethod
    def completion_only() -> "PipelineConfig":
        """The paper's "general data generation" ablation baseline."""
        return PipelineConfig(alignment=False, repair=False,
                              repair_feedback=False, eda_scripts=False)

    @staticmethod
    def nl_only() -> "PipelineConfig":
        """Fig. 7 ablation: only natural-language-aligned data."""
        return PipelineConfig(completion=False, repair=False,
                              repair_feedback=False, eda_scripts=False)


@dataclass
class PipelineReport:
    """What the pipeline produced (before/after trimming)."""

    dataset: Dataset
    raw_count: int = 0
    trimmed_count: int = 0
    per_task: dict[Task, int] = field(default_factory=dict)


class AugmentationPipeline:
    """Run the full framework over a corpus of Verilog files."""

    def __init__(self, config: PipelineConfig | None = None):
        self.config = config or PipelineConfig()

    def run(self, verilog_files: Iterable[str],
            eda_scripts: Iterable[str] = (),
            describer: Describer | None = None) -> PipelineReport:
        config = self.config
        dataset = Dataset()
        for position, text in enumerate(verilog_files):
            file_seed = config.seed * 1_000_003 + position
            if config.completion:
                dataset.extend(completion_records(
                    text, statement_cap=config.statement_cap,
                    token_cap=config.token_cap))
            if config.alignment:
                dataset.extend(alignment_records(
                    text,
                    include_partial=config.include_partial_alignment))
            if config.repair:
                dataset.extend(repair_records(
                    text, seed=file_seed,
                    variants=config.repair_variants,
                    max_mutations=config.max_mutations))
            if config.repair_feedback:
                dataset.extend(feedback_repair_records(
                    text, seed=file_seed + 7,
                    variants=config.repair_variants,
                    max_mutations=config.max_mutations))
        if config.eda_scripts and eda_scripts:
            if describer is None:
                from .script_aug import default_describer
                describer = default_describer()
            dataset.extend(script_records(eda_scripts, describer))
        raw_count = len(dataset)
        trimmed = dataset.trimmed(config.max_tokens)
        return PipelineReport(dataset=trimmed, raw_count=raw_count,
                              trimmed_count=raw_count - len(trimmed),
                              per_task=trimmed.task_counts())
