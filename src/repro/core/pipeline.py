"""The full design-data augmentation pipeline (paper Fig. 4).

``AugmentationPipeline`` wires every stage together:

1. multi-level completion (Sec. 3.1.1),
2. program-analysis NL alignment (Sec. 3.1.2),
3. rule-based mutation → repair pairs (Sec. 3.2.1),
4. checker-feedback repair pairs (Sec. 3.2.2),
5. EDA-script description pairs (Sec. 3.3),

then trims over-length records (Sec. 4 "Implementation").  Every stage can
be disabled individually, which is how the ablation experiments (Fig. 7 /
Table 5 "General Aug") build their completion-only datasets.
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Iterable
from dataclasses import asdict, dataclass, field

from .alignment import alignment_records
from .completion import completion_records
from .records import Dataset, Record, Task
from .repair import feedback_repair_records, repair_records
from .script_aug import Describer, script_records


@dataclass
class PipelineConfig:
    """Stage toggles and per-stage knobs."""

    completion: bool = True
    alignment: bool = True
    repair: bool = True
    repair_feedback: bool = True
    eda_scripts: bool = True
    include_partial_alignment: bool = True
    repair_variants: int = 3
    max_mutations: int = 5
    statement_cap: int | None = 64
    token_cap: int | None = 256
    max_tokens: int = 1800          # trimming budget ≈ Llama-2 context
    seed: int = 0

    @staticmethod
    def completion_only() -> "PipelineConfig":
        """The paper's "general data generation" ablation baseline."""
        return PipelineConfig(alignment=False, repair=False,
                              repair_feedback=False, eda_scripts=False)

    @staticmethod
    def nl_only() -> "PipelineConfig":
        """Fig. 7 ablation: only natural-language-aligned data."""
        return PipelineConfig(completion=False, repair=False,
                              repair_feedback=False, eda_scripts=False)

    def fingerprint(self) -> str:
        """Stable hash of every knob that affects pipeline output.

        ``repro.scale`` stamps cached shard results with this value, so
        changing any stage toggle or cap invalidates the whole cache
        rather than silently serving records built under old settings.
        """
        blob = json.dumps(asdict(self), sort_keys=True)
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass
class PipelineReport:
    """What the pipeline produced (before/after trimming)."""

    dataset: Dataset
    raw_count: int = 0
    trimmed_count: int = 0
    per_task: dict[Task, int] = field(default_factory=dict)


def content_seed(text: str, base_seed: int = 0) -> int:
    """Per-file RNG seed derived from the *content* of ``text``.

    Mixing the pipeline-level seed with a SHA-256 digest of the source
    makes every downstream random choice (mutation selection, repair
    variants) a pure function of ``(text, base_seed)``: identical files
    produce identical records no matter where they sit in the corpus or
    which worker processes them.  This is what lets ``repro.scale``
    shard a corpus and still merge byte-identical output.
    """
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return (base_seed * 1_000_003
            + int.from_bytes(digest[:8], "big")) & ((1 << 63) - 1)


def augment_file(text: str, config: PipelineConfig | None = None,
                 seed: int | None = None) -> list[Record]:
    """Run every per-file stage over one Verilog source.

    Pure function: output depends only on ``(text, config, seed)``.
    Both the legacy serial :class:`AugmentationPipeline` and the
    sharded :mod:`repro.scale` runner call this, so the two paths can
    never drift apart.  ``seed`` defaults to
    ``content_seed(text, config.seed)``.
    """
    config = config or PipelineConfig()
    if seed is None:
        seed = content_seed(text, config.seed)
    records: list[Record] = []
    if config.completion:
        records.extend(completion_records(
            text, statement_cap=config.statement_cap,
            token_cap=config.token_cap))
    if config.alignment:
        records.extend(alignment_records(
            text, include_partial=config.include_partial_alignment))
    if config.repair:
        records.extend(repair_records(
            text, seed=seed,
            variants=config.repair_variants,
            max_mutations=config.max_mutations))
    if config.repair_feedback:
        records.extend(feedback_repair_records(
            text, seed=seed + 7,
            variants=config.repair_variants,
            max_mutations=config.max_mutations))
    return records


class AugmentationPipeline:
    """Run the full framework over a corpus of Verilog files."""

    def __init__(self, config: PipelineConfig | None = None):
        self.config = config or PipelineConfig()

    def run(self, verilog_files: Iterable[str],
            eda_scripts: Iterable[str] = (),
            describer: Describer | None = None) -> PipelineReport:
        """Serially augment ``verilog_files`` (any iterable — it is
        streamed, never materialised).

        Compat note: per-file seeds used to be derived from the file's
        *position* in the corpus, so reordering the corpus changed the
        generated repair pairs.  Seeds are now content-based (see
        :func:`content_seed`); identical files yield identical records
        regardless of corpus ordering or duplication.
        """
        config = self.config
        dataset = Dataset()
        for text in verilog_files:
            dataset.extend(augment_file(text, config))
        if config.eda_scripts and eda_scripts:
            if describer is None:
                from .script_aug import default_describer
                describer = default_describer()
            dataset.extend(script_records(eda_scripts, describer))
        raw_count = len(dataset)
        trimmed = dataset.trimmed(config.max_tokens)
        return PipelineReport(dataset=trimmed, raw_count=raw_count,
                              trimmed_count=raw_count - len(trimmed),
                              per_task=trimmed.task_counts())
