"""The paper's primary contribution: the design-data augmentation framework.

Stages (paper Fig. 4):

* :mod:`completion`  — multi-level Verilog completion (Sec. 3.1.1)
* :mod:`alignment`   — program-analysis NL alignment (Sec. 3.1.2)
* :mod:`mutation`    — rule-based error injection (Sec. 3.2.1)
* :mod:`repair`      — repair pairs incl. EDA feedback (Sec. 3.2.2)
* :mod:`script_aug`  — EDA-script description pairs (Sec. 3.3)
* :mod:`pipeline`    — the end-to-end framework
* :mod:`stats`       — Table-2 dataset accounting
"""

from .alignment import alignment_records, translatable_structures
from .completion import (completion_records, module_level, segment_count,
                         statement_level, token_level)
from .mutation import (MUTATION_RULES, AppliedMutation, MutationResult,
                       Mutator, mutate)
from .pipeline import (AugmentationPipeline, PipelineConfig, PipelineReport,
                       augment_file, content_seed)
from .records import (INSTRUCTIONS, Dataset, Record, Task,
                      atomic_write_text, make_record)
from .repair import (feedback_repair_records, make_broken_variant,
                     repair_records)
from .script_aug import script_records
from .stats import (PAPER_TABLE2, TABLE2_ORDER, TaskStats, dataset_stats,
                    format_size, render_table2)

__all__ = [
    "Task", "Record", "Dataset", "make_record", "INSTRUCTIONS",
    "completion_records", "module_level", "statement_level", "token_level",
    "segment_count", "alignment_records", "translatable_structures",
    "Mutator", "mutate", "MutationResult", "AppliedMutation",
    "MUTATION_RULES", "repair_records", "feedback_repair_records",
    "make_broken_variant", "script_records",
    "AugmentationPipeline", "PipelineConfig", "PipelineReport",
    "augment_file", "content_seed", "atomic_write_text",
    "dataset_stats", "render_table2", "format_size", "TaskStats",
    "PAPER_TABLE2", "TABLE2_ORDER",
]
