"""Rule-based Verilog error injection (paper Sec. 3.2.1).

Implements the paper's five targeted-error rules:

* **word missing** — remove keywords, semicolons or operands;
* **type error** — flip ``wire`` ↔ ``reg``;
* **width error** — add/subtract 1 from a range bound;
* **additional word** — insert a nonsense word;
* **logic error** — remove the condition of an ``if`` statement.

Mutations are applied to the raw source text (located via lexer tokens) so
the result can be arbitrarily broken; the paper caps the number of edits
per module at five, which we honour via ``max_mutations``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..verilog import TokenKind
from .textspan import Edit, TokenSpan, apply_edits, token_spans

#: Rule names in paper order.
MUTATION_RULES = (
    "word_missing",
    "type_error",
    "width_error",
    "additional_word",
    "logic_error",
)

_REMOVABLE_KEYWORDS = frozenset({
    "module", "endmodule", "begin", "end", "if", "else", "posedge",
    "negedge", "assign", "wire", "reg", "input", "output", "case",
    "endcase", "always", "initial",
})

_NONSENSE_WORDS = ("foo", "bar_x", "qux", "tmp_wire", "blah", "zzz",
                   "misplaced", "stray")


@dataclass(frozen=True)
class AppliedMutation:
    """Provenance of one injected error."""

    rule: str
    line: int
    description: str


@dataclass
class MutationResult:
    """A mutated file plus the list of injected errors."""

    original: str
    mutated: str
    applied: list[AppliedMutation] = field(default_factory=list)

    @property
    def changed(self) -> bool:
        return bool(self.applied) and self.mutated != self.original


class Mutator:
    """Seeded error injector over Verilog source text."""

    def __init__(self, seed: int = 0,
                 rules: tuple[str, ...] = MUTATION_RULES,
                 max_mutations: int = 5):
        unknown = set(rules) - set(MUTATION_RULES)
        if unknown:
            raise ValueError(f"unknown mutation rules: {sorted(unknown)}")
        if max_mutations < 1:
            raise ValueError("max_mutations must be >= 1")
        self.rules = rules
        self.max_mutations = min(max_mutations, 5)  # paper's cap
        self.rng = random.Random(seed)

    # -- candidate collection per rule -----------------------------------

    def _candidates_word_missing(self, spans: list[TokenSpan],
                                 text: str) -> list[Edit]:
        out = []
        for span in spans:
            token = span.token
            if token.kind is TokenKind.KEYWORD and \
                    token.value in _REMOVABLE_KEYWORDS:
                out.append(Edit(span.start, span.end, "",
                                f"removed keyword '{token.value}'"))
            elif token.is_op(";"):
                out.append(Edit(span.start, span.end, "",
                                "removed semicolon"))
            elif token.kind is TokenKind.ID and len(token.value) > 1:
                out.append(Edit(span.start, span.end, "",
                                f"removed operand '{token.value}'"))
        return out

    def _candidates_type_error(self, spans: list[TokenSpan],
                               text: str) -> list[Edit]:
        out = []
        for span in spans:
            if span.token.is_kw("wire"):
                out.append(Edit(span.start, span.end, "reg",
                                "changed wire to reg"))
            elif span.token.is_kw("reg"):
                out.append(Edit(span.start, span.end, "wire",
                                "changed reg to wire"))
        return out

    def _candidates_width_error(self, spans: list[TokenSpan],
                                text: str) -> list[Edit]:
        out = []
        for pos in range(1, len(spans) - 1):
            span = spans[pos]
            if span.token.kind is not TokenKind.NUMBER:
                continue
            prev_tok = spans[pos - 1].token
            next_tok = spans[pos + 1].token
            in_range = (prev_tok.is_op("[") and next_tok.is_op(":")) or \
                       (prev_tok.is_op(":") and next_tok.is_op("]"))
            if not in_range or "'" in span.token.value:
                continue
            try:
                value = int(span.token.value.replace("_", ""))
            except ValueError:
                continue
            delta = 1 if self.rng.random() < 0.5 or value == 0 else -1
            out.append(Edit(span.start, span.end, str(value + delta),
                            f"changed width bound {value} to "
                            f"{value + delta}"))
        return out

    def _candidates_additional_word(self, spans: list[TokenSpan],
                                    text: str) -> list[Edit]:
        out = []
        for span in spans:
            if span.token.kind in (TokenKind.STRING,):
                continue
            word = self.rng.choice(_NONSENSE_WORDS)
            out.append(Edit(span.end, span.end, f" {word}",
                            f"inserted nonsense word '{word}'"))
        return out

    def _candidates_logic_error(self, spans: list[TokenSpan],
                                text: str) -> list[Edit]:
        """Remove an ``if (cond)`` header, leaving the branch unguarded."""
        out = []
        for pos, span in enumerate(spans):
            if not span.token.is_kw("if"):
                continue
            if pos + 1 >= len(spans) or not spans[pos + 1].token.is_op("("):
                continue
            depth = 0
            end_span = None
            for scan in range(pos + 1, len(spans)):
                value = spans[scan].token.value
                if spans[scan].token.kind is TokenKind.OP:
                    if value == "(":
                        depth += 1
                    elif value == ")":
                        depth -= 1
                        if depth == 0:
                            end_span = spans[scan]
                            break
            if end_span is not None:
                out.append(Edit(span.start, end_span.end, "",
                                "removed if condition"))
        return out

    # -- public API ------------------------------------------------------

    def candidates(self, text: str,
                   rule: str) -> list[Edit]:
        spans = token_spans(text)
        return getattr(self, f"_candidates_{rule}")(spans, text)

    def mutate(self, text: str, count: int | None = None,
               rule: str | None = None) -> MutationResult:
        """Inject up to ``count`` errors (default: 1..max_mutations).

        ``rule`` restricts the injection to a single rule (used by the
        per-rule ablation bench); otherwise rules are drawn uniformly from
        the configured set.
        """
        if count is None:
            count = self.rng.randint(1, self.max_mutations)
        count = max(1, min(count, self.max_mutations))
        chosen: list[Edit] = []
        applied: list[AppliedMutation] = []
        rule_pool = [rule] if rule else list(self.rules)
        attempts = 0
        while len(chosen) < count and attempts < count * 8:
            attempts += 1
            picked_rule = self.rng.choice(rule_pool)
            candidates = self.candidates(text, picked_rule)
            candidates = [c for c in candidates
                          if not _overlaps(c, chosen)]
            if not candidates:
                continue
            edit = self.rng.choice(candidates)
            chosen.append(edit)
            line = text.count("\n", 0, edit.start) + 1
            applied.append(AppliedMutation(rule=picked_rule, line=line,
                                           description=edit.description))
        mutated = apply_edits(text, chosen) if chosen else text
        return MutationResult(original=text, mutated=mutated,
                              applied=applied)


def _overlaps(edit: Edit, existing: list[Edit]) -> bool:
    for other in existing:
        if edit.start == edit.end:
            # Insertion: touching another edit's boundary is ambiguous for
            # the right-to-left application order, so count it as overlap.
            if other.start <= edit.start <= other.end:
                return True
        elif other.start == other.end:
            if edit.start <= other.start <= edit.end:
                return True
        elif not (edit.end <= other.start or other.end <= edit.start):
            return True
    return False


def mutate(text: str, seed: int = 0, count: int | None = None,
           rule: str | None = None) -> MutationResult:
    """Convenience wrapper around :class:`Mutator`."""
    return Mutator(seed=seed).mutate(text, count=count, rule=rule)
