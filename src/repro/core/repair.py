"""Verilog repair-pair generation (paper Sec. 3.2).

Two flavours, matching Table 2's ``Verilog Mask Completion`` and ``Verilog
Debug`` rows:

* **mask/repair pairs** — (wrong Verilog → right Verilog) produced by the
  rule-based mutation engine;
* **EDA-feedback pairs** — the mutated file is run through the yosys-style
  checker; the first error line is prepended to the input, exactly like
  the paper's Fig. 6 example.
"""

from __future__ import annotations

from collections.abc import Iterator

from ..checker import check_source
from .mutation import MutationResult, Mutator
from .records import Record, Task, make_record


def repair_records(text: str, seed: int = 0, variants: int = 3,
                   max_mutations: int = 5) -> Iterator[Record]:
    """(wrong → right) pairs, ``variants`` mutated copies per file."""
    mutator = Mutator(seed=seed, max_mutations=max_mutations)
    for _ in range(variants):
        result = mutator.mutate(text)
        if not result.changed:
            continue
        yield make_record(Task.MASK_COMPLETION, result.mutated.strip(),
                          text.strip(),
                          rules=",".join(m.rule for m in result.applied))


def feedback_repair_records(text: str, seed: int = 0, variants: int = 3,
                            filename: str = "./design.v",
                            max_mutations: int = 5) -> Iterator[Record]:
    """(yosys feedback + wrong → right) pairs (paper Sec. 3.2.2, Fig. 6).

    Only mutants the checker actually rejects are kept: the feedback line
    is real tool output, not synthetic.
    """
    mutator = Mutator(seed=seed, max_mutations=max_mutations)
    for _ in range(variants):
        result = mutator.mutate(text)
        if not result.changed:
            continue
        feedback = check_source(result.mutated, filename).first_error()
        if feedback is None:
            # Semantically silent mutation: still useful as a plain
            # repair pair but not as a feedback pair.
            continue
        yield make_record(Task.DEBUG,
                          f"{feedback},\n{result.mutated.strip()}",
                          text.strip(),
                          rules=",".join(m.rule for m in result.applied))


def make_broken_variant(text: str, seed: int = 0,
                        count: int | None = None) -> MutationResult:
    """One mutated copy of ``text`` (used by benchmarks and examples)."""
    return Mutator(seed=seed).mutate(text, count=count)
