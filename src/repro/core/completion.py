"""Multi-level Verilog completion augmentation (paper Sec. 3.1.1).

A module with *i* tokens and *j* statements yields ``1 + j + i`` completion
segments:

* **module level** (1): the module header predicts the body;
* **statement level** (*j*): code up to each ``;`` predicts the next
  statement;
* **token level** (*i*): each token prefix predicts the next token.

Because token-level augmentation is quadratic in text volume, callers can
cap the number of records per module; the paper's Table 2 itself reports
word-level data an order of magnitude larger than the rest.
"""

from __future__ import annotations

from collections.abc import Iterator

from ..verilog import TokenKind, tokenize
from .records import Record, Task, make_record


def _token_spans(text: str) -> list[tuple[int, int]]:
    """(start, end) byte offsets of every token in ``text``."""
    line_starts = [0]
    for pos, ch in enumerate(text):
        if ch == "\n":
            line_starts.append(pos + 1)
    spans = []
    for token in tokenize(text):
        if token.kind is TokenKind.EOF:
            break
        start = line_starts[token.line - 1] + token.col - 1
        spans.append((start, start + max(len(token.value), 1)))
    return spans


def module_level(text: str) -> Iterator[Record]:
    """Header → body prediction (1 record per module)."""
    tokens = tokenize(text)
    spans = _token_spans(text)
    header_end = None
    for pos, token in enumerate(tokens):
        if token.is_op(";"):
            header_end = spans[pos][1]
            break
    if header_end is None:
        return
    yield make_record(Task.MODULE_COMPLETION,
                      text[:header_end].strip(),
                      text[header_end:].strip(),
                      level="module")


def statement_level(text: str,
                    max_records: int | None = None) -> Iterator[Record]:
    """Prefix-up-to-``;`` → next statement prediction (*j* records)."""
    tokens = tokenize(text)
    spans = _token_spans(text)
    semis = [pos for pos, token in enumerate(tokens) if token.is_op(";")]
    count = 0
    for boundary_pos in range(len(semis) - 1):
        prefix_end = spans[semis[boundary_pos]][1]
        next_end = spans[semis[boundary_pos + 1]][1]
        prefix = text[:prefix_end].strip()
        statement = text[prefix_end:next_end].strip()
        if not statement:
            continue
        yield make_record(Task.STATEMENT_COMPLETION, prefix, statement,
                          level="statement")
        count += 1
        if max_records is not None and count >= max_records:
            return


def token_level(text: str,
                max_records: int | None = None) -> Iterator[Record]:
    """Token prefix → next token prediction (*i* records)."""
    spans = _token_spans(text)
    count = 0
    for pos in range(1, len(spans)):
        prefix = text[:spans[pos - 1][1]].strip()
        nxt = text[spans[pos][0]:spans[pos][1]]
        yield make_record(Task.WORD_COMPLETION, prefix, nxt, level="token")
        count += 1
        if max_records is not None and count >= max_records:
            return


def segment_count(text: str) -> int:
    """``1 + j + i`` segments per the paper's formula."""
    tokens = tokenize(text)
    token_count = len(tokens) - 1  # minus EOF
    statement_count = sum(1 for token in tokens if token.is_op(";"))
    return 1 + statement_count + token_count


def completion_records(text: str,
                       statement_cap: int | None = None,
                       token_cap: int | None = None) -> Iterator[Record]:
    """All three completion levels for one Verilog file."""
    yield from module_level(text)
    yield from statement_level(text, max_records=statement_cap)
    yield from token_level(text, max_records=token_cap)
