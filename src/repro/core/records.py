"""Instruction-tuning records and dataset containers.

The paper's framework emits records with exactly three fields
(Sec. 3): an ``instruct`` field distinguishing the task, an ``input``
field with the prompt/context, and an ``output`` field with the expected
result.  ``Task`` enumerates the seven dataset rows of Table 2.
"""

from __future__ import annotations

import json
import os
import tempfile
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field
from enum import Enum


class Task(Enum):
    """Dataset categories (one per row of the paper's Table 2)."""

    NL_VERILOG = "nl_verilog_generation"
    MASK_COMPLETION = "verilog_mask_completion"
    DEBUG = "verilog_debug"
    WORD_COMPLETION = "verilog_word_level_completion"
    MODULE_COMPLETION = "verilog_module_level_completion"
    STATEMENT_COMPLETION = "verilog_statement_level_completion"
    EDA_SCRIPT = "nl_eda_script_generation"

    @property
    def table2_label(self) -> str:
        return _TABLE2_LABELS[self]


_TABLE2_LABELS = {
    Task.NL_VERILOG: "Natural Language Verilog Generation",
    Task.MASK_COMPLETION: "Verilog Mask Completion",
    Task.DEBUG: "Verilog Debug",
    Task.WORD_COMPLETION: "Verilog Word-Level Completion",
    Task.MODULE_COMPLETION: "Verilog Module-Level Completion",
    Task.STATEMENT_COMPLETION: "Verilog Statement-Level Completion",
    Task.EDA_SCRIPT: "Natural Language EDA Script Generation",
}

#: Instruction strings exactly as printed in the paper.
INSTRUCTIONS = {
    Task.NL_VERILOG: "give me the Verilog module of this description. ",
    Task.MASK_COMPLETION: "complete the masked tokens of this Verilog "
                          "file. ",
    Task.DEBUG: "give me correct Verilog according to the given wrong "
                "Verilog. ",
    Task.WORD_COMPLETION: "complete the next token of Verilog file. ",
    Task.MODULE_COMPLETION: "complete the next module of Verilog file. ",
    Task.STATEMENT_COMPLETION: "complete the next statement of Verilog "
                               "file. ",
    Task.EDA_SCRIPT: "give me SiliconCompiler script. ",
}


@dataclass(frozen=True)
class Record:
    """One training example in the paper's three-field format."""

    task: Task
    instruct: str
    input: str
    output: str
    meta: tuple[tuple[str, str], ...] = ()

    def to_json(self) -> str:
        return json.dumps({"instruct": self.instruct, "input": self.input,
                           "output": self.output}, ensure_ascii=False)

    def to_dict(self) -> dict:
        """Lossless form (incl. task + meta) for shard caches."""
        return {"task": self.task.value, "instruct": self.instruct,
                "input": self.input, "output": self.output,
                "meta": [list(pair) for pair in self.meta]}

    @staticmethod
    def from_dict(blob: dict) -> "Record":
        """Inverse of :meth:`to_dict`."""
        return Record(task=Task(blob["task"]), instruct=blob["instruct"],
                      input=blob["input"], output=blob["output"],
                      meta=tuple((key, value)
                                 for key, value in blob.get("meta", ())))

    @property
    def approx_tokens(self) -> int:
        """Whitespace-token count used for max-length trimming."""
        return (len(self.instruct.split()) + len(self.input.split())
                + len(self.output.split()))

    @property
    def size_bytes(self) -> int:
        return len(self.to_json().encode())


def atomic_write_text(path: str, text: str) -> None:
    """Durably replace ``path`` with ``text`` (temp file + ``os.replace``)."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(dir=directory,
                                    prefix=os.path.basename(path) + ".",
                                    suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def make_record(task: Task, input_text: str, output_text: str,
                **meta: str) -> Record:
    """Build a record with the paper's canonical instruction string."""
    return Record(task=task, instruct=INSTRUCTIONS[task], input=input_text,
                  output=output_text,
                  meta=tuple(sorted(meta.items())))


@dataclass
class Dataset:
    """A collection of records with per-task accounting."""

    records: list[Record] = field(default_factory=list)

    def add(self, record: Record) -> None:
        self.records.append(record)

    def extend(self, records: Iterable[Record]) -> None:
        self.records.extend(records)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[Record]:
        return iter(self.records)

    def by_task(self, task: Task) -> list[Record]:
        return [r for r in self.records if r.task is task]

    def task_counts(self) -> dict[Task, int]:
        counts: dict[Task, int] = {}
        for record in self.records:
            counts[record.task] = counts.get(record.task, 0) + 1
        return counts

    def trimmed(self, max_tokens: int) -> "Dataset":
        """Drop records above the token budget (paper Sec. 4, Implementation:
        "We trim the data that exceeds the maximum token length")."""
        return Dataset(records=[r for r in self.records
                                if r.approx_tokens <= max_tokens])

    def to_jsonl(self) -> str:
        return "\n".join(record.to_json() for record in self.records)

    def save(self, path: str) -> None:
        """Write JSONL atomically (temp file + rename).

        Parent directories are created on demand, and the rename means a
        concurrent reader — or another shard writer crashing mid-write —
        can never observe a torn file.
        """
        atomic_write_text(path, self.to_jsonl() + ("\n" if self.records
                                                   else ""))

    @staticmethod
    def load(path: str, task: Task) -> "Dataset":
        dataset = Dataset()
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                blob = json.loads(line)
                dataset.add(Record(task=task, instruct=blob["instruct"],
                                   input=blob["input"],
                                   output=blob["output"]))
        return dataset
